use mp_tensor::init::TensorRng;
use mp_tensor::{linalg, Shape, ShapeError, Tensor, Workspace};

use crate::layer::{cached, Layer, Mode};
use crate::LayerCost;

/// Fully-connected (inner-product) layer: `y = x·Wᵀ + b`.
///
/// Accepts `[N, in_features]` batches. The weight matrix is stored as
/// `[out_features, in_features]` to match FINN's matrix–vector engine
/// layout (one row per output neuron).
///
/// # Example
///
/// ```
/// use mp_nn::{layers::Linear, Layer, Mode};
/// use mp_tensor::{init::TensorRng, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut rng = TensorRng::seed_from(2);
/// let mut fc = Linear::new(16, 10, &mut rng)?;
/// let y = fc.forward(&Tensor::zeros([4, 16]), Mode::Infer)?;
/// assert_eq!(y.shape().dims(), &[4, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero biases.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if either feature count is zero.
    pub fn new(
        in_features: usize,
        out_features: usize,
        rng: &mut TensorRng,
    ) -> Result<Self, ShapeError> {
        if in_features == 0 || out_features == 0 {
            return Err(ShapeError::new(
                "Linear::new",
                "feature counts must be positive",
            ));
        }
        Ok(Self {
            in_features,
            out_features,
            weight: rng.xavier([out_features, in_features], in_features, out_features),
            bias: Tensor::zeros([out_features]),
            weight_grad: Tensor::zeros([out_features, in_features]),
            bias_grad: Tensor::zeros([out_features]),
            cached_input: None,
        })
    }

    /// The `[out_features, in_features]` weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The `[out_features]` bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `weight` has a different shape.
    pub fn set_weight(&mut self, weight: Tensor) -> Result<(), ShapeError> {
        if weight.shape() != self.weight.shape() {
            return Err(ShapeError::new(
                "Linear::set_weight",
                format!("expected {}, got {}", self.weight.shape(), weight.shape()),
            ));
        }
        self.weight = weight;
        Ok(())
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    fn check_input(&self, input: &Shape) -> Result<usize, ShapeError> {
        if input.rank() != 2 || input.dim(1) != self.in_features {
            return Err(ShapeError::new(
                "Linear",
                format!("expected [N,{}] input, got {input}", self.in_features),
            ));
        }
        Ok(input.dim(0))
    }
}

impl Layer for Linear {
    fn name(&self) -> String {
        format!("FC-{}", self.out_features)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        let n = self.check_input(input)?;
        Ok(Shape::matrix(n, self.out_features))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        self.check_input(input.shape())?;
        let mut y = linalg::matmul_transpose_b(input, &self.weight)?;
        let n = input.shape().dim(0);
        for row in 0..n {
            let slice =
                &mut y.as_mut_slice()[row * self.out_features..(row + 1) * self.out_features];
            for (v, &b) in slice.iter_mut().zip(self.bias.iter()) {
                *v += b;
            }
        }
        if mode.is_train() {
            self.cached_input = Some(input.clone());
        }
        Ok(y)
    }

    fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        let n = self.check_input(input.shape())?;
        let mut y = ws.take(n * self.out_features);
        linalg::matmul_transpose_b_into(input, &self.weight, &mut y)?;
        for row in 0..n {
            let slice = &mut y[row * self.out_features..(row + 1) * self.out_features];
            for (v, &b) in slice.iter_mut().zip(self.bias.iter()) {
                *v += b;
            }
        }
        Tensor::from_vec(Shape::matrix(n, self.out_features), y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let input = cached(&self.cached_input, "Linear")?;
        let n = input.shape().dim(0);
        let want = Shape::matrix(n, self.out_features);
        if grad_output.shape() != &want {
            return Err(ShapeError::new(
                "Linear",
                format!("expected grad {want}, got {}", grad_output.shape()),
            ));
        }
        // dW += gᵀ × x
        let dw = linalg::matmul_transpose_a(grad_output, input)?;
        self.weight_grad.axpy(1.0, &dw)?;
        // db += column sums of g
        for row in 0..n {
            let g = &grad_output.as_slice()[row * self.out_features..(row + 1) * self.out_features];
            for (acc, &v) in self.bias_grad.as_mut_slice().iter_mut().zip(g) {
                *acc += v;
            }
        }
        // dx = g × W
        linalg::matmul(grad_output, &self.weight)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.weight, &mut self.weight_grad);
        visitor(&mut self.bias, &mut self.bias_grad);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn zero_grads(&mut self) {
        self.weight_grad.map_inplace(|_| 0.0);
        self.bias_grad.map_inplace(|_| 0.0);
    }

    fn cost(&self, input: &Shape) -> Result<LayerCost, ShapeError> {
        self.check_input(input)?;
        Ok(LayerCost::new(
            (self.out_features * self.in_features) as u64,
            (self.out_features * (self.in_features + 1)) as u64,
            self.out_features as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = TensorRng::seed_from(3);
        let mut fc = Linear::new(2, 2, &mut rng).unwrap();
        fc.set_weight(Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap())
            .unwrap();
        fc.bias = Tensor::from_vec([2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec([1, 2], vec![1.0, 1.0]).unwrap();
        let y = fc.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn rejects_bad_input() {
        let mut rng = TensorRng::seed_from(3);
        let mut fc = Linear::new(4, 2, &mut rng).unwrap();
        assert!(fc.forward(&Tensor::zeros([2, 3]), Mode::Infer).is_err());
        assert!(fc.forward(&Tensor::zeros([4]), Mode::Infer).is_err());
        assert!(Linear::new(0, 2, &mut rng).is_err());
    }

    #[test]
    fn gradient_check() {
        let mut rng = TensorRng::seed_from(4);
        let mut fc = Linear::new(3, 2, &mut rng).unwrap();
        let x = rng.normal([2, 3], 0.0, 1.0);
        let y = fc.forward(&x, Mode::Train).unwrap();
        let dx = fc.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let eps = 1e-2;
        // weight gradient
        for idx in 0..6 {
            let orig = fc.weight.as_slice()[idx];
            fc.weight.as_mut_slice()[idx] = orig + eps;
            let plus = fc.forward(&x, Mode::Infer).unwrap().sum();
            fc.weight.as_mut_slice()[idx] = orig - eps;
            let minus = fc.forward(&x, Mode::Infer).unwrap().sum();
            fc.weight.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = fc.weight_grad.as_slice()[idx];
            assert!((analytic - numeric).abs() < 1e-2, "{analytic} vs {numeric}");
        }
        // input gradient
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let plus = fc.forward(&xp, Mode::Infer).unwrap().sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let minus = fc.forward(&xm, Mode::Infer).unwrap().sum();
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((dx.as_slice()[idx] - numeric).abs() < 1e-2);
        }
    }

    #[test]
    fn bias_grad_sums_over_batch() {
        let mut rng = TensorRng::seed_from(5);
        let mut fc = Linear::new(2, 2, &mut rng).unwrap();
        let x = Tensor::zeros([3, 2]);
        fc.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones([3, 2]);
        fc.backward(&g).unwrap();
        assert_eq!(fc.bias_grad.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn cost_matches_hand_count() {
        let mut rng = TensorRng::seed_from(6);
        let fc = Linear::new(256, 64, &mut rng).unwrap();
        let cost = fc.cost(&Shape::matrix(1, 256)).unwrap();
        assert_eq!(cost.macs, 256 * 64);
        assert_eq!(cost.params, 64 * 257);
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = TensorRng::seed_from(7);
        let mut fc = Linear::new(2, 2, &mut rng).unwrap();
        assert!(fc.backward(&Tensor::zeros([1, 2])).is_err());
    }
}
