use mp_tensor::{Shape, ShapeError, Tensor, Workspace};

use crate::layer::{Layer, Mode};
use crate::LayerCost;

/// Cross-channel local response normalisation (cuda-convnet style).
///
/// For channel `c` with a window of `size` channels centred on `c`:
///
/// ```text
/// y_c = x_c / (k + α/size · Σ_{j∈window(c)} x_j²)^β
/// ```
///
/// The paper's Model A (Krizhevsky's cuda-convnet CIFAR-10 network)
/// interleaves two LRN layers with its pooling stages.
///
/// # Example
///
/// ```
/// use mp_nn::{layers::LocalResponseNorm, Layer, Mode};
/// use mp_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut lrn = LocalResponseNorm::new(3, 1e-4, 0.75, 1.0)?;
/// let x = Tensor::ones(Shape::nchw(1, 4, 2, 2));
/// let y = lrn.forward(&x, Mode::Infer)?;
/// assert_eq!(y.shape(), x.shape());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LocalResponseNorm {
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    cache: Option<LrnCache>,
}

#[derive(Debug)]
struct LrnCache {
    input: Tensor,
    /// Per-element normaliser `S = k + α/size · Σ x²` over the channel window.
    scale: Tensor,
}

impl LocalResponseNorm {
    /// Creates an LRN layer with window `size` (number of channels) and
    /// the usual `alpha`, `beta`, `k` hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `size` is zero or even (the window must
    /// centre on a channel).
    pub fn new(size: usize, alpha: f32, beta: f32, k: f32) -> Result<Self, ShapeError> {
        if size == 0 || size.is_multiple_of(2) {
            return Err(ShapeError::new(
                "LocalResponseNorm::new",
                format!("window size {size} must be odd and positive"),
            ));
        }
        Ok(Self {
            size,
            alpha,
            beta,
            k,
            cache: None,
        })
    }

    fn compute_scale(&self, input: &Tensor) -> Result<Tensor, ShapeError> {
        let shape = input.shape();
        let (n, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let plane = h * w;
        let half = self.size / 2;
        let coeff = self.alpha / self.size as f32;
        let mut scale = Tensor::filled(shape.clone(), self.k);
        let xv = input.as_slice();
        let sv = scale.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                let lo = ch.saturating_sub(half);
                let hi = (ch + half).min(c - 1);
                let dst = (img * c + ch) * plane;
                for j in lo..=hi {
                    let src = (img * c + j) * plane;
                    for p in 0..plane {
                        let x = xv[src + p];
                        sv[dst + p] += coeff * x * x;
                    }
                }
            }
        }
        Ok(scale)
    }
}

impl Layer for LocalResponseNorm {
    fn name(&self) -> String {
        format!("LRN(size={})", self.size)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        if input.rank() != 4 {
            return Err(ShapeError::new(
                "LocalResponseNorm",
                format!("expected NCHW input, got {input}"),
            ));
        }
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        self.output_shape(input.shape())?;
        let scale = self.compute_scale(input)?;
        let beta = self.beta;
        let out = input.zip_with(&scale, |x, s| x * s.powf(-beta))?;
        if mode.is_train() {
            self.cache = Some(LrnCache {
                input: input.clone(),
                scale,
            });
        }
        Ok(out)
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        self.output_shape(input.shape())?;
        let scale = self.compute_scale(input)?;
        let beta = self.beta;
        input.zip_with(&scale, |x, s| x * s.powf(-beta))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let cache = self.cache.take().ok_or_else(|| {
            ShapeError::new(
                "LocalResponseNorm",
                "backward called without a preceding training-mode forward",
            )
        })?;
        if grad_output.shape() != cache.input.shape() {
            return Err(ShapeError::new(
                "LocalResponseNorm",
                format!(
                    "expected grad {}, got {}",
                    cache.input.shape(),
                    grad_output.shape()
                ),
            ));
        }
        let shape = cache.input.shape();
        let (n, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let plane = h * w;
        let half = self.size / 2;
        let coeff = 2.0 * self.alpha * self.beta / self.size as f32;
        let xv = cache.input.as_slice();
        let sv = cache.scale.as_slice();
        let gv = grad_output.as_slice();
        // dx_i = g_i·S_i^{-β} − coeff·x_i·Σ_{c: i∈window(c)} g_c·x_c·S_c^{-β-1}
        let mut grad_in = Tensor::zeros(shape.clone());
        let dv = grad_in.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                for p in 0..plane {
                    dv[base + p] += gv[base + p] * sv[base + p].powf(-self.beta);
                }
                // Scatter the second term to every channel in this window.
                let lo = ch.saturating_sub(half);
                let hi = (ch + half).min(c - 1);
                for j in lo..=hi {
                    let dst = (img * c + j) * plane;
                    for p in 0..plane {
                        let contrib =
                            gv[base + p] * xv[base + p] * sv[base + p].powf(-self.beta - 1.0);
                        dv[dst + p] -= coeff * xv[dst + p] * contrib;
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn cost(&self, input: &Shape) -> Result<LayerCost, ShapeError> {
        let out = self.output_shape(input)?;
        // Squared-sum over the window plus the power: ≈ size+2 MACs/element.
        let elems = out.len() / out.dim(0).max(1);
        Ok(LayerCost::new(
            ((self.size + 2) * elems) as u64,
            0,
            elems as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_tensor::init::TensorRng;

    #[test]
    fn identity_when_alpha_zero() {
        let mut lrn = LocalResponseNorm::new(3, 0.0, 0.75, 1.0).unwrap();
        let x = Tensor::from_fn(Shape::nchw(1, 4, 2, 2), |i| i as f32);
        let y = lrn.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn suppresses_high_energy_neighbourhoods() {
        let mut lrn = LocalResponseNorm::new(3, 1.0, 0.75, 1.0).unwrap();
        // Channel 1 has large neighbours, channel 3 does not.
        let mut x = Tensor::zeros(Shape::nchw(1, 4, 1, 1));
        x.as_mut_slice().copy_from_slice(&[10.0, 1.0, 10.0, 1.0]);
        let y = lrn.forward(&x, Mode::Infer).unwrap();
        assert!(y.as_slice()[1] < y.as_slice()[3]);
    }

    #[test]
    fn window_size_must_be_odd() {
        assert!(LocalResponseNorm::new(2, 1.0, 0.75, 1.0).is_err());
        assert!(LocalResponseNorm::new(0, 1.0, 0.75, 1.0).is_err());
        assert!(LocalResponseNorm::new(5, 1.0, 0.75, 1.0).is_ok());
    }

    #[test]
    fn gradient_check() {
        let mut lrn = LocalResponseNorm::new(3, 0.5, 0.75, 2.0).unwrap();
        let mut rng = TensorRng::seed_from(10);
        let x = rng.normal(Shape::nchw(1, 4, 2, 2), 0.0, 1.0);
        lrn.forward(&x, Mode::Train).unwrap();
        let dx = lrn.backward(&Tensor::ones(x.shape().clone())).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 5, 9, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let plus = lrn.forward(&xp, Mode::Infer).unwrap().sum();
            let minus = lrn.forward(&xm, Mode::Infer).unwrap().sum();
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!(
                (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dx[{idx}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn rejects_non_nchw() {
        let lrn = LocalResponseNorm::new(3, 1.0, 0.75, 1.0).unwrap();
        assert!(lrn.output_shape(&Shape::matrix(2, 3)).is_err());
    }
}
