use mp_tensor::{Shape, ShapeError, Tensor, Workspace};

use crate::layer::{Layer, Mode};

/// Batch normalisation over the channel axis (NCHW) or feature axis (NF).
///
/// This is the layer the binarised network's training path relies on: FINN
/// folds each batch-norm's affine transform into the integer *threshold*
/// of the following sign activation (paper §II), and
/// [`BatchNorm::fold_threshold`] exposes exactly the quantities that
/// folding needs.
///
/// # Example
///
/// ```
/// use mp_nn::{layers::BatchNorm, Layer, Mode};
/// use mp_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut bn = BatchNorm::new(8, 0.9, 1e-5)?;
/// let x = Tensor::zeros(Shape::nchw(4, 8, 2, 2));
/// let y = bn.forward(&x, Mode::Infer)?;
/// assert_eq!(y.shape(), x.shape());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchNorm {
    features: usize,
    momentum: f32,
    eps: f32,
    gamma: Tensor,
    beta: Tensor,
    gamma_grad: Tensor,
    beta_grad: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    normalised: Tensor,
    inv_std: Vec<f32>,
    input_shape: Shape,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `features` channels.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `features` is zero or `eps` is not
    /// positive.
    pub fn new(features: usize, momentum: f32, eps: f32) -> Result<Self, ShapeError> {
        if features == 0 {
            return Err(ShapeError::new(
                "BatchNorm::new",
                "features must be positive",
            ));
        }
        if eps <= 0.0 {
            return Err(ShapeError::new("BatchNorm::new", "eps must be positive"));
        }
        Ok(Self {
            features,
            momentum,
            eps,
            gamma: Tensor::ones([features]),
            beta: Tensor::zeros([features]),
            gamma_grad: Tensor::zeros([features]),
            beta_grad: Tensor::zeros([features]),
            running_mean: Tensor::zeros([features]),
            running_var: Tensor::ones([features]),
            cache: None,
        })
    }

    /// Number of normalised channels/features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Per-channel scale γ.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma
    }

    /// Per-channel shift β.
    pub fn beta(&self) -> &Tensor {
        &self.beta
    }

    /// Running mean used at inference time.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance used at inference time.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Numerical-stability epsilon added to the variance. Exporters
    /// need it to reproduce `σ = sqrt(var + eps)` bit-exactly when
    /// re-deriving thresholds outside this layer.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Folds this layer into per-channel sign-activation thresholds.
    ///
    /// A binarised activation computes `sign(bn(x))`. Since
    /// `bn(x) = γ·(x − μ)/σ + β`, the sign flips at
    /// `x = μ − β·σ/γ`, so a FINN engine can replace the batch-norm +
    /// sign pair with an integer comparison against this threshold
    /// (negated when `γ < 0`). Returns `(threshold, negate)` per channel.
    pub fn fold_threshold(&self) -> Vec<(f32, bool)> {
        (0..self.features)
            .map(|c| {
                let mu = self.running_mean.as_slice()[c];
                let var = self.running_var.as_slice()[c];
                let sigma = (var + self.eps).sqrt();
                let gamma = self.gamma.as_slice()[c];
                let beta = self.beta.as_slice()[c];
                if gamma.abs() < f32::EPSILON {
                    // Degenerate: bn output is constant β; the sign is fixed.
                    (
                        if beta >= 0.0 {
                            f32::NEG_INFINITY
                        } else {
                            f32::INFINITY
                        },
                        false,
                    )
                } else {
                    (mu - beta * sigma / gamma, gamma < 0.0)
                }
            })
            .collect()
    }

    /// Channel geometry: (per-channel group count, elements per group).
    fn geometry(&self, shape: &Shape) -> Result<(usize, usize), ShapeError> {
        match shape.rank() {
            2 if shape.dim(1) == self.features => Ok((shape.dim(0), 1)),
            4 if shape.dim(1) == self.features => Ok((shape.dim(0), shape.dim(2) * shape.dim(3))),
            _ => Err(ShapeError::new(
                "BatchNorm",
                format!(
                    "expected [N,{f}] or [N,{f},H,W] input, got {shape}",
                    f = self.features
                ),
            )),
        }
    }

    fn channel_offsets(shape: &Shape, channel: usize) -> (usize, usize, usize) {
        // Returns (batch stride, channel offset, plane length).
        if shape.rank() == 2 {
            (shape.dim(1), channel, 1)
        } else {
            let plane = shape.dim(2) * shape.dim(3);
            (shape.dim(1) * plane, channel * plane, plane)
        }
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> String {
        format!("batchnorm-{}", self.features)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        self.geometry(input)?;
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let (n, plane) = self.geometry(input.shape())?;
        let count = (n * plane) as f32;
        let shape = input.shape().clone();
        let mut out = Tensor::zeros(shape.clone());
        let mut normalised = Tensor::zeros(shape.clone());
        let mut inv_stds = vec![0.0f32; self.features];
        #[allow(clippy::needless_range_loop)] // c indexes stats and params alike
        for c in 0..self.features {
            let (bstride, coff, p) = Self::channel_offsets(&shape, c);
            let (mean, var) = if mode.is_train() {
                let mut sum = 0.0f32;
                let mut sq = 0.0f32;
                for img in 0..n {
                    let base = img * bstride + coff;
                    for &x in &input.as_slice()[base..base + p] {
                        sum += x;
                        sq += x * x;
                    }
                }
                let mean = sum / count;
                let var = (sq / count - mean * mean).max(0.0);
                // Update running statistics.
                let m = self.momentum;
                self.running_mean.as_mut_slice()[c] =
                    m * self.running_mean.as_slice()[c] + (1.0 - m) * mean;
                self.running_var.as_mut_slice()[c] =
                    m * self.running_var.as_slice()[c] + (1.0 - m) * var;
                (mean, var)
            } else {
                (
                    self.running_mean.as_slice()[c],
                    self.running_var.as_slice()[c],
                )
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[c] = inv_std;
            let gamma = self.gamma.as_slice()[c];
            let beta = self.beta.as_slice()[c];
            for img in 0..n {
                let base = img * bstride + coff;
                for i in base..base + p {
                    let xhat = (input.as_slice()[i] - mean) * inv_std;
                    normalised.as_mut_slice()[i] = xhat;
                    out.as_mut_slice()[i] = gamma * xhat + beta;
                }
            }
        }
        if mode.is_train() {
            self.cache = Some(BnCache {
                normalised,
                inv_std: inv_stds,
                input_shape: shape,
            });
        }
        Ok(out)
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        let (n, _) = self.geometry(input.shape())?;
        let shape = input.shape().clone();
        let mut out = Tensor::zeros(shape.clone());
        #[allow(clippy::needless_range_loop)] // c indexes stats and params alike
        for c in 0..self.features {
            let (bstride, coff, p) = Self::channel_offsets(&shape, c);
            let mean = self.running_mean.as_slice()[c];
            let var = self.running_var.as_slice()[c];
            let inv_std = 1.0 / (var + self.eps).sqrt();
            let gamma = self.gamma.as_slice()[c];
            let beta = self.beta.as_slice()[c];
            for img in 0..n {
                let base = img * bstride + coff;
                for i in base..base + p {
                    let xhat = (input.as_slice()[i] - mean) * inv_std;
                    out.as_mut_slice()[i] = gamma * xhat + beta;
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let cache = self.cache.take().ok_or_else(|| {
            ShapeError::new(
                "BatchNorm",
                "backward called without a preceding training-mode forward",
            )
        })?;
        if grad_output.shape() != &cache.input_shape {
            return Err(ShapeError::new(
                "BatchNorm",
                format!(
                    "expected grad {}, got {}",
                    cache.input_shape,
                    grad_output.shape()
                ),
            ));
        }
        let (n, plane) = self.geometry(&cache.input_shape)?;
        let count = (n * plane) as f32;
        let mut grad_in = Tensor::zeros(cache.input_shape.clone());
        for c in 0..self.features {
            let (bstride, coff, p) = Self::channel_offsets(&cache.input_shape, c);
            let gamma = self.gamma.as_slice()[c];
            let inv_std = cache.inv_std[c];
            // Channel reductions.
            let mut dbeta = 0.0f32;
            let mut dgamma = 0.0f32;
            for img in 0..n {
                let base = img * bstride + coff;
                for i in base..base + p {
                    dbeta += grad_output.as_slice()[i];
                    dgamma += grad_output.as_slice()[i] * cache.normalised.as_slice()[i];
                }
            }
            self.beta_grad.as_mut_slice()[c] += dbeta;
            self.gamma_grad.as_mut_slice()[c] += dgamma;
            // dx = γ·inv_std/count · (count·g − dβ − x̂·dγ)
            for img in 0..n {
                let base = img * bstride + coff;
                for i in base..base + p {
                    let g = grad_output.as_slice()[i];
                    let xhat = cache.normalised.as_slice()[i];
                    grad_in.as_mut_slice()[i] =
                        gamma * inv_std / count * (count * g - dbeta - xhat * dgamma);
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.gamma, &mut self.gamma_grad);
        visitor(&mut self.beta, &mut self.beta_grad);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        visitor(&self.gamma);
        visitor(&self.beta);
        // Running statistics feed inference directly; a NaN here
        // poisons outputs just like a NaN weight, so the read-only
        // scan includes them.
        visitor(&self.running_mean);
        visitor(&self.running_var);
    }

    fn zero_grads(&mut self) {
        self.gamma_grad.map_inplace(|_| 0.0);
        self.beta_grad.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_tensor::init::TensorRng;

    #[test]
    fn training_output_is_normalised() {
        let mut bn = BatchNorm::new(2, 0.9, 1e-5).unwrap();
        let mut rng = TensorRng::seed_from(20);
        let x = rng.normal(Shape::nchw(8, 2, 4, 4), 3.0, 2.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel mean ≈ 0, var ≈ 1.
        for c in 0..2 {
            let mut vals = Vec::new();
            for img in 0..8 {
                let base = (img * 2 + c) * 16;
                vals.extend_from_slice(&y.as_slice()[base..base + 16]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm::new(1, 0.0, 1e-5).unwrap(); // momentum 0: running = last batch
        let mut rng = TensorRng::seed_from(21);
        let x = rng.normal(Shape::nchw(16, 1, 2, 2), 5.0, 1.0);
        bn.forward(&x, Mode::Train).unwrap();
        assert!((bn.running_mean().as_slice()[0] - 5.0).abs() < 0.2);
        let y = bn.forward(&x, Mode::Infer).unwrap();
        assert!(y.mean().abs() < 0.1);
    }

    #[test]
    fn rank2_inputs_supported() {
        let mut bn = BatchNorm::new(3, 0.9, 1e-5).unwrap();
        let x = Tensor::from_fn([4, 3], |i| i as f32);
        let y = bn.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape().dims(), &[4, 3]);
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm::new(2, 0.9, 1e-3).unwrap();
        let mut rng = TensorRng::seed_from(22);
        let x = rng.normal([4, 2], 0.0, 1.0);
        // Non-trivial gamma/beta.
        bn.gamma = Tensor::from_vec([2], vec![1.5, -0.5]).unwrap();
        bn.beta = Tensor::from_vec([2], vec![0.2, 0.1]).unwrap();
        bn.forward(&x, Mode::Train).unwrap();
        // Weighted sum so the gradient is not identically zero (a plain sum
        // of a normalised batch has near-zero input gradient).
        let w = Tensor::from_fn([4, 2], |i| (i as f32 * 0.7).sin());
        let dx = bn.backward(&w).unwrap();
        let eps = 1e-2f32;
        let loss = |bn: &mut BatchNorm, x: &Tensor| -> f32 {
            let y = bn.forward(x, Mode::Train).unwrap();
            bn.cache = None;
            y.iter().zip(w.iter()).map(|(&a, &b)| a * b).sum()
        };
        for idx in 0..8 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!(
                (analytic - numeric).abs() < 3e-2 * (1.0 + numeric.abs()),
                "dx[{idx}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn fold_threshold_matches_sign_flip() {
        let mut bn = BatchNorm::new(1, 0.0, 1e-5).unwrap();
        bn.running_mean = Tensor::from_vec([1], vec![2.0]).unwrap();
        bn.running_var = Tensor::from_vec([1], vec![4.0]).unwrap();
        bn.gamma = Tensor::from_vec([1], vec![0.5]).unwrap();
        bn.beta = Tensor::from_vec([1], vec![-1.0]).unwrap();
        let thr = bn.fold_threshold();
        let (t, neg) = thr[0];
        assert!(!neg);
        // bn(x) = 0.5·(x−2)/2 − 1 = 0 → x = 6
        assert!((t - 6.0).abs() < 1e-2, "threshold {t}");
        // Verify the fold: bn(x) ≥ 0 ⟺ x ≥ t.
        for x in [-10.0f32, 0.0, 5.9, 6.1, 20.0] {
            let bn_out = 0.5 * (x - 2.0) / (4.0f32 + 1e-5).sqrt() - 1.0;
            assert_eq!(bn_out >= 0.0, x >= t, "x = {x}");
        }
    }

    #[test]
    fn fold_threshold_negates_for_negative_gamma() {
        let mut bn = BatchNorm::new(1, 0.0, 1e-5).unwrap();
        bn.gamma = Tensor::from_vec([1], vec![-1.0]).unwrap();
        let (_, neg) = bn.fold_threshold()[0];
        assert!(neg);
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let mut bn = BatchNorm::new(4, 0.9, 1e-5).unwrap();
        assert!(bn.forward(&Tensor::zeros([2, 3]), Mode::Infer).is_err());
        assert!(BatchNorm::new(0, 0.9, 1e-5).is_err());
        assert!(BatchNorm::new(4, 0.9, 0.0).is_err());
    }
}
