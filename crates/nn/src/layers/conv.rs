use mp_tensor::conv::{col2im, im2col, im2col_slice_into, ConvGeometry};
use mp_tensor::init::TensorRng;
use mp_tensor::{linalg, Shape, ShapeError, Tensor, Workspace};

use crate::layer::{Layer, Mode};
use crate::LayerCost;

/// 2-D convolution computed as `im2col` + GEMM.
///
/// Weights are stored as a `[out_channels, in_channels·K·K]` matrix so the
/// forward pass per image is a single matrix product over the patch
/// matrix — the same matrix–matrix lowering the FINN engines implement in
/// hardware (paper §II).
///
/// # Example
///
/// ```
/// use mp_nn::{layers::Conv2d, Layer, Mode};
/// use mp_tensor::{init::TensorRng, Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut rng = TensorRng::seed_from(1);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 0, &mut rng)?;
/// let x = Tensor::zeros(Shape::nchw(2, 3, 16, 16));
/// let y = conv.forward(&x, Mode::Infer)?;
/// assert_eq!(y.shape().dims(), &[2, 8, 14, 14]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    geom: ConvGeometry,
    weight: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    cached_cols: Option<Vec<Tensor>>,
    cached_input_shape: Option<Shape>,
}

impl Conv2d {
    /// Creates a convolution with He-initialised weights and zero biases.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `in_channels` or `out_channels` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut TensorRng,
    ) -> Result<Self, ShapeError> {
        if in_channels == 0 || out_channels == 0 {
            return Err(ShapeError::new(
                "Conv2d::new",
                "channel counts must be positive",
            ));
        }
        let geom = ConvGeometry::new(kernel, stride, padding);
        let fan_in = in_channels * kernel * kernel;
        Ok(Self {
            in_channels,
            out_channels,
            geom,
            weight: rng.he([out_channels, fan_in], fan_in),
            bias: Tensor::zeros([out_channels]),
            weight_grad: Tensor::zeros([out_channels, fan_in]),
            bias_grad: Tensor::zeros([out_channels]),
            cached_cols: None,
            cached_input_shape: None,
        })
    }

    /// The convolution geometry (kernel, stride, padding).
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }

    /// The `[out_channels, in_channels·K·K]` weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The `[out_channels]` bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the weight matrix (e.g. with binarised weights).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `weight` has a different shape.
    pub fn set_weight(&mut self, weight: Tensor) -> Result<(), ShapeError> {
        if weight.shape() != self.weight.shape() {
            return Err(ShapeError::new(
                "Conv2d::set_weight",
                format!("expected {}, got {}", self.weight.shape(), weight.shape()),
            ));
        }
        self.weight = weight;
        Ok(())
    }

    /// Number of input channels this layer expects.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels this layer produces.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Shape) -> Result<(usize, usize, usize, usize), ShapeError> {
        if input.rank() != 4 || input.dim(1) != self.in_channels {
            return Err(ShapeError::new(
                "Conv2d",
                format!("expected [N,{},H,W] input, got {input}", self.in_channels),
            ));
        }
        let oh = self.geom.output_dim(input.dim(2));
        let ow = self.geom.output_dim(input.dim(3));
        if oh == 0 || ow == 0 {
            return Err(ShapeError::new(
                "Conv2d",
                format!("kernel does not fit input {input}"),
            ));
        }
        Ok((input.dim(0), input.dim(1), oh, ow))
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!("{0}x{0}-conv-{1}", self.geom.kernel, self.out_channels)
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        let (n, _, oh, ow) = self.check_input(input)?;
        Ok(Shape::nchw(n, self.out_channels, oh, ow))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let (n, _, oh, ow) = self.check_input(input.shape())?;
        let mut out = Vec::with_capacity(n * self.out_channels * oh * ow);
        let mut cols_cache = mode.is_train().then(|| Vec::with_capacity(n));
        for img in 0..n {
            let image = input.batch_item(img)?;
            let cols = im2col(&image, self.geom)?;
            let mut y = linalg::matmul(&self.weight, &cols)?;
            let pixels = oh * ow;
            for oc in 0..self.out_channels {
                let b = self.bias.as_slice()[oc];
                for v in &mut y.as_mut_slice()[oc * pixels..(oc + 1) * pixels] {
                    *v += b;
                }
            }
            out.extend_from_slice(y.as_slice());
            if let Some(cache) = &mut cols_cache {
                cache.push(cols);
            }
        }
        if mode.is_train() {
            self.cached_cols = cols_cache;
            self.cached_input_shape = Some(input.shape().clone());
        }
        Tensor::from_vec(Shape::nchw(n, self.out_channels, oh, ow), out)
    }

    fn infer(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        let (n, c, oh, ow) = self.check_input(input.shape())?;
        let (h, w) = (input.shape().dim(2), input.shape().dim(3));
        let pixels = oh * ow;
        let image_len = c * h * w;
        let fan_in = c * self.geom.kernel * self.geom.kernel;
        let xv = input.as_slice();
        // Batch-level GEMM: scatter every image's im2col columns into one
        // `[fan_in, n·pixels]` patch matrix and multiply once. Each output
        // element accumulates over the same K entries in the same order as
        // a per-image product, so results are bit-identical while the GEMM
        // amortises its tile setup over the whole batch.
        let mut cols_one = ws.take(fan_in * pixels);
        let mut cols_all = ws.take(fan_in * n * pixels);
        cols_all.clear();
        cols_all.resize(fan_in * n * pixels, 0.0);
        for img in 0..n {
            let image = &xv[img * image_len..(img + 1) * image_len];
            let (rows, cols) = im2col_slice_into(image, c, h, w, self.geom, &mut cols_one)?;
            debug_assert_eq!((rows, cols), (fan_in, pixels));
            for r in 0..rows {
                let dst = r * n * pixels + img * pixels;
                cols_all[dst..dst + pixels]
                    .copy_from_slice(&cols_one[r * pixels..(r + 1) * pixels]);
            }
        }
        let patches = Tensor::from_vec(Shape::matrix(fan_in, n * pixels), cols_all)?;
        let mut y = ws.take(self.out_channels * n * pixels);
        linalg::matmul_into(&self.weight, &patches, &mut y)?;
        // Reorder `[oc, n·pixels]` to `[n, oc, pixels]`, adding the bias.
        let mut out = ws.take(n * self.out_channels * pixels);
        out.clear();
        for img in 0..n {
            for oc in 0..self.out_channels {
                let b = self.bias.as_slice()[oc];
                let src = &y[oc * n * pixels + img * pixels..][..pixels];
                out.extend(src.iter().map(|&v| v + b));
            }
        }
        ws.put(patches.into_vec());
        ws.put(y);
        ws.put(cols_one);
        Tensor::from_vec(Shape::nchw(n, self.out_channels, oh, ow), out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let cols = self.cached_cols.take().ok_or_else(|| {
            ShapeError::new(
                "Conv2d",
                "backward called without a preceding training-mode forward",
            )
        })?;
        let in_shape = self
            .cached_input_shape
            .clone()
            .ok_or_else(|| ShapeError::new("Conv2d", "missing cached input shape"))?;
        let (n, c, h, w) = (
            in_shape.dim(0),
            in_shape.dim(1),
            in_shape.dim(2),
            in_shape.dim(3),
        );
        let oh = self.geom.output_dim(h);
        let ow = self.geom.output_dim(w);
        let want = Shape::nchw(n, self.out_channels, oh, ow);
        if grad_output.shape() != &want {
            return Err(ShapeError::new(
                "Conv2d",
                format!("expected grad {want}, got {}", grad_output.shape()),
            ));
        }
        let pixels = oh * ow;
        let mut grad_in = Vec::with_capacity(n * c * h * w);
        #[allow(clippy::needless_range_loop)] // index drives several containers
        for img in 0..n {
            let g = grad_output.batch_item(img)?;
            let g = g.into_reshaped([self.out_channels, pixels])?;
            // dW += g × colsᵀ
            let dw = linalg::matmul_transpose_b(&g, &cols[img])?;
            self.weight_grad.axpy(1.0, &dw)?;
            // db += row sums of g
            for oc in 0..self.out_channels {
                let row_sum: f32 = g.as_slice()[oc * pixels..(oc + 1) * pixels].iter().sum();
                self.bias_grad.as_mut_slice()[oc] += row_sum;
            }
            // dx = col2im(Wᵀ × g)
            let dcols = linalg::matmul_transpose_a(&self.weight, &g)?;
            let dx = col2im(&dcols, c, h, w, self.geom)?;
            grad_in.extend_from_slice(dx.as_slice());
        }
        Tensor::from_vec(in_shape, grad_in)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.weight, &mut self.weight_grad);
        visitor(&mut self.bias, &mut self.bias_grad);
    }

    fn visit_params_ref(&self, visitor: &mut dyn FnMut(&Tensor)) {
        visitor(&self.weight);
        visitor(&self.bias);
    }

    fn zero_grads(&mut self) {
        self.weight_grad.map_inplace(|_| 0.0);
        self.bias_grad.map_inplace(|_| 0.0);
    }

    fn cost(&self, input: &Shape) -> Result<LayerCost, ShapeError> {
        let (_, _, oh, ow) = self.check_input(input)?;
        let fan_in = self.in_channels * self.geom.kernel * self.geom.kernel;
        Ok(LayerCost::new(
            (self.out_channels * fan_in * oh * ow) as u64,
            (self.out_channels * (fan_in + 1)) as u64,
            (self.out_channels * oh * ow) as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::seed_from(11)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 2, 1, 0, &mut r).unwrap();
        conv.set_weight(Tensor::zeros([2, 4])).unwrap();
        conv.bias = Tensor::from_vec([2], vec![1.5, -2.0]).unwrap();
        let x = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        let y = conv.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2, 2]);
        assert_eq!(y.as_slice()[0..4], [1.5; 4]);
        assert_eq!(y.as_slice()[4..8], [-2.0; 4]);
    }

    #[test]
    fn rejects_wrong_channels_and_small_inputs() {
        let mut r = rng();
        let mut conv = Conv2d::new(3, 4, 3, 1, 0, &mut r).unwrap();
        assert!(conv
            .forward(&Tensor::zeros(Shape::nchw(1, 2, 8, 8)), Mode::Infer)
            .is_err());
        assert!(conv
            .forward(&Tensor::zeros(Shape::nchw(1, 3, 2, 2)), Mode::Infer)
            .is_err());
        assert!(Conv2d::new(0, 1, 3, 1, 0, &mut r).is_err());
    }

    #[test]
    fn known_convolution_value() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r).unwrap();
        conv.set_weight(Tensor::from_vec([1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap())
            .unwrap();
        let x = Tensor::from_fn(Shape::nchw(1, 1, 2, 2), |i| i as f32);
        let y = conv.forward(&x, Mode::Infer).unwrap();
        // 1*0 + 2*1 + 3*2 + 4*3 = 20
        assert_eq!(y.as_slice(), &[20.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r).unwrap();
        assert!(conv
            .backward(&Tensor::zeros(Shape::nchw(1, 1, 1, 1)))
            .is_err());
    }

    #[test]
    fn gradient_check_weights() {
        // Finite differences on a tiny conv: d(sum(y))/dw.
        let mut r = rng();
        let mut conv = Conv2d::new(2, 2, 2, 1, 0, &mut r).unwrap();
        let x = r.normal(Shape::nchw(2, 2, 3, 3), 0.0, 1.0);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let ones = Tensor::ones(y.shape().clone());
        conv.backward(&ones).unwrap();
        let analytic = conv.weight_grad.clone();
        let eps = 1e-2f32;
        for idx in [0usize, 3, 5] {
            let orig = conv.weight.as_slice()[idx];
            conv.weight.as_mut_slice()[idx] = orig + eps;
            let plus = conv.forward(&x, Mode::Infer).unwrap().sum();
            conv.weight.as_mut_slice()[idx] = orig - eps;
            let minus = conv.forward(&x, Mode::Infer).unwrap().sum();
            conv.weight.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dW[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 2, 1, 0, &mut r).unwrap();
        let x = r.normal(Shape::nchw(1, 1, 3, 3), 0.0, 1.0);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let dx = conv.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 4, 8] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let plus = conv.forward(&xp, Mode::Infer).unwrap().sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let minus = conv.forward(&xm, Mode::Infer).unwrap().sum();
            let numeric = (plus - minus) / (2.0 * eps);
            let a = dx.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dx[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn cost_matches_hand_count() {
        let mut r = rng();
        let conv = Conv2d::new(3, 64, 3, 1, 0, &mut r).unwrap();
        let cost = conv.cost(&Shape::nchw(1, 3, 32, 32)).unwrap();
        // OH=OW=30, fan_in=27: macs = 64*27*900
        assert_eq!(cost.macs, 64 * 27 * 900);
        assert_eq!(cost.params, 64 * 28);
        assert_eq!(cost.activations, 64 * 900);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r).unwrap();
        let x = r.normal(Shape::nchw(1, 1, 3, 3), 0.0, 1.0);
        let y = conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert!(conv.weight_grad.iter().any(|&g| g != 0.0));
        conv.zero_grads();
        assert!(conv.weight_grad.iter().all(|&g| g == 0.0));
        assert!(conv.bias_grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn name_mentions_geometry() {
        let mut r = rng();
        let conv = Conv2d::new(3, 64, 3, 1, 0, &mut r).unwrap();
        assert_eq!(conv.name(), "3x3-conv-64");
    }
}
