use mp_tensor::{Shape, ShapeError, Tensor, Workspace};

use crate::layer::{cached, Layer, Mode};

/// Row-wise softmax over `[N, classes]` score matrices.
///
/// Numerically stabilised by subtracting each row's maximum before
/// exponentiation. The training losses in [`crate::loss`] fuse softmax
/// with cross-entropy; this standalone layer exists for inference-time
/// probability outputs and for the DMU's probability calibration.
///
/// # Example
///
/// ```
/// use mp_nn::{layers::Softmax, Layer, Mode};
/// use mp_tensor::Tensor;
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut sm = Softmax::new();
/// let y = sm.forward(&Tensor::from_vec([1, 2], vec![0.0, 0.0])?, Mode::Infer)?;
/// assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies row-wise softmax to a `[N, classes]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `scores` is not rank-2.
    pub fn eval(scores: &Tensor) -> Result<Tensor, ShapeError> {
        if scores.shape().rank() != 2 {
            return Err(ShapeError::new(
                "Softmax",
                format!("expected [N,classes] input, got {}", scores.shape()),
            ));
        }
        let (n, k) = (scores.shape().dim(0), scores.shape().dim(1));
        let mut out = Tensor::zeros(Shape::matrix(n, k));
        for row in 0..n {
            let src = &scores.as_slice()[row * k..(row + 1) * k];
            let max = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let dst = &mut out.as_mut_slice()[row * k..(row + 1) * k];
            let mut denom = 0.0f32;
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = (s - max).exp();
                denom += *d;
            }
            for d in dst.iter_mut() {
                *d /= denom;
            }
        }
        Ok(out)
    }
}

impl Layer for Softmax {
    fn name(&self) -> String {
        "softmax".to_owned()
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        if input.rank() != 2 {
            return Err(ShapeError::new(
                "Softmax",
                format!("expected [N,classes] input, got {input}"),
            ));
        }
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let out = Self::eval(input)?;
        if mode.is_train() {
            self.cached_output = Some(out.clone());
        }
        Ok(out)
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        Self::eval(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let y = cached(&self.cached_output, "Softmax")?;
        if grad_output.shape() != y.shape() {
            return Err(ShapeError::new(
                "Softmax",
                format!("expected grad {}, got {}", y.shape(), grad_output.shape()),
            ));
        }
        let (n, k) = (y.shape().dim(0), y.shape().dim(1));
        let mut grad_in = Tensor::zeros(y.shape().clone());
        for row in 0..n {
            let yr = &y.as_slice()[row * k..(row + 1) * k];
            let gr = &grad_output.as_slice()[row * k..(row + 1) * k];
            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            let dst = &mut grad_in.as_mut_slice()[row * k..(row + 1) * k];
            for ((d, &yv), &gv) in dst.iter_mut().zip(yr).zip(gr) {
                *d = yv * (gv - dot);
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]).unwrap();
        let y = Softmax::eval(&x).unwrap();
        for row in 0..2 {
            let s: f32 = y.as_slice()[row * 3..(row + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn monotone_in_scores() {
        let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = Softmax::eval(&x).unwrap();
        assert!(y.as_slice()[0] < y.as_slice()[1]);
        assert!(y.as_slice()[1] < y.as_slice()[2]);
    }

    #[test]
    fn stable_under_large_scores() {
        let x = Tensor::from_vec([1, 2], vec![1000.0, 1001.0]).unwrap();
        let y = Softmax::eval(&x).unwrap();
        assert!(y.iter().all(|v| v.is_finite()));
        assert!((y.sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_check() {
        let mut sm = Softmax::new();
        let x = Tensor::from_vec([1, 3], vec![0.5, -0.2, 0.9]).unwrap();
        sm.forward(&x, Mode::Train).unwrap();
        let w = Tensor::from_vec([1, 3], vec![1.0, 2.0, -1.0]).unwrap();
        let dx = sm.backward(&w).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let f = |t: &Tensor| {
                Softmax::eval(t)
                    .unwrap()
                    .iter()
                    .zip(w.iter())
                    .map(|(&a, &b)| a * b)
                    .sum::<f32>()
            };
            let numeric = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((dx.as_slice()[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_non_matrix() {
        assert!(Softmax::eval(&Tensor::zeros([3])).is_err());
    }
}
