//! Layer implementations.
//!
//! Every layer implements [`Layer`](crate::Layer) with a full backward
//! pass, so the same engine both trains the host-side Caffe-style models
//! (Table III of the paper) and provides the straight-through-estimator
//! substrate the binarised network in `mp-bnn` trains with.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod lrn;
mod pool;
mod softmax;

pub use activation::{Relu, Sigmoid};
pub use batchnorm::BatchNorm;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use lrn::LocalResponseNorm;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use softmax::Softmax;
