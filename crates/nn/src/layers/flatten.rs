use mp_tensor::{Shape, ShapeError, Tensor, Workspace};

use crate::layer::{Layer, Mode};

/// Reshapes `[N, d1, d2, …]` activations to `[N, d1·d2·…]` for FC layers.
///
/// # Example
///
/// ```
/// use mp_nn::{layers::Flatten, Layer, Mode};
/// use mp_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut flat = Flatten::new();
/// let y = flat.forward(&Tensor::zeros(Shape::nchw(2, 3, 4, 4)), Mode::Infer)?;
/// assert_eq!(y.shape().dims(), &[2, 48]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Flatten {
    cached_input_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".to_owned()
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        if input.rank() < 2 {
            return Err(ShapeError::new(
                "Flatten",
                format!("expected at least rank-2 input, got {input}"),
            ));
        }
        let n = input.dim(0);
        Ok(Shape::matrix(n, input.len() / n.max(1)))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let out_shape = self.output_shape(input.shape())?;
        if mode.is_train() {
            self.cached_input_shape = Some(input.shape().clone());
        }
        input.reshape(out_shape)
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        input.reshape(self.output_shape(input.shape())?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let in_shape = self.cached_input_shape.take().ok_or_else(|| {
            ShapeError::new(
                "Flatten",
                "backward called without a preceding training-mode forward",
            )
        })?;
        grad_output.reshape(in_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shapes() {
        let mut flat = Flatten::new();
        let x = Tensor::from_fn(Shape::nchw(2, 2, 2, 2), |i| i as f32);
        let y = flat.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape().dims(), &[2, 8]);
        let dx = flat.backward(&y).unwrap();
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dx.as_slice(), x.as_slice());
    }

    #[test]
    fn rejects_vectors_and_missing_forward() {
        let mut flat = Flatten::new();
        assert!(flat.output_shape(&Shape::vector(4)).is_err());
        assert!(flat.backward(&Tensor::zeros([2, 4])).is_err());
    }
}
