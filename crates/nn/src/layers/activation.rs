use mp_tensor::{Shape, ShapeError, Tensor, Workspace};

use crate::layer::{cached, Layer, Mode};

/// Rectified linear unit: `y = max(0, x)`.
///
/// # Example
///
/// ```
/// use mp_nn::{layers::Relu, Layer, Mode};
/// use mp_tensor::Tensor;
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec([3], vec![-1.0, 0.0, 2.0])?;
/// assert_eq!(relu.forward(&x, Mode::Infer)?.as_slice(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> String {
        "ReLU".to_owned()
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        if mode.is_train() {
            self.cached_input = Some(input.clone());
        }
        Ok(input.map(|x| x.max(0.0)))
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let input = cached(&self.cached_input, "Relu")?;
        input.zip_with(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^{-x})`.
///
/// Used by the paper's DMU, whose trained Softmax layer applies "a Sigmoid
/// positive transfer function" to produce the success probability (§III-B).
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scalar sigmoid function.
    pub fn eval(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> String {
        "Sigmoid".to_owned()
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let out = input.map(Self::eval);
        if mode.is_train() {
            self.cached_output = Some(out.clone());
        }
        Ok(out)
    }

    fn infer(&self, input: &Tensor, _ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        Ok(input.map(Self::eval))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let out = cached(&self.cached_output, "Sigmoid")?;
        out.zip_with(grad_output, |y, g| g * y * (1.0 - y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec([4], vec![-2.0, -0.1, 0.1, 5.0]).unwrap();
        let y = relu.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.1, 5.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec([3], vec![-1.0, 2.0, 0.0]).unwrap();
        relu.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec([3], vec![10.0, 10.0, 10.0]).unwrap();
        let dx = relu.backward(&g).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn relu_backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros([1])).is_err());
    }

    #[test]
    fn sigmoid_midpoint_and_saturation() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec([3], vec![0.0, 10.0, -10.0]).unwrap();
        let y = s.forward(&x, Mode::Infer).unwrap();
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[1] > 0.9999);
        assert!(y.as_slice()[2] < 0.0001);
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec([2], vec![0.3, -1.2]).unwrap();
        s.forward(&x, Mode::Train).unwrap();
        let dx = s.backward(&Tensor::ones([2])).unwrap();
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric = (s.forward(&xp, Mode::Infer).unwrap().sum()
                - s.forward(&xm, Mode::Infer).unwrap().sum())
                / (2.0 * eps);
            assert!((dx.as_slice()[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn shapes_pass_through() {
        let relu = Relu::new();
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(relu.output_shape(&s).unwrap(), s);
    }
}
