use std::fmt;

use mp_obs::{now_ns, Recorder};
use mp_tensor::init::TensorRng;
use mp_tensor::{nan_aware_argmax, Parallelism, Shape, ShapeError, Tensor, Workspace};

use crate::layer::{Layer, Mode};
use crate::layers::{
    AvgPool2d, BatchNorm, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, LocalResponseNorm,
    MaxPool2d, Relu, Sigmoid, Softmax,
};
use crate::LayerCost;

/// Sub-batch size of the shard executor in
/// [`Network::infer_batch_with`]: large enough to amortise per-call
/// dispatch, small enough that a sub-batch's inter-layer activations
/// stay L1/L2-resident.
const INFER_SUB_BATCH: usize = 16;

/// One worker's share of a batched inference: output dims + row data.
type InferShard = Result<(Vec<usize>, Vec<f32>), ShapeError>;

/// A sequential network of [`Layer`]s.
///
/// Built with [`Network::builder`], which tracks the activation shape so
/// convolution and fully-connected layers infer their input sizes — the
/// layer listings in the paper's Tables I and III transcribe directly into
/// builder chains.
///
/// # Example
///
/// ```
/// use mp_nn::Network;
/// use mp_tensor::{init::TensorRng, Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut rng = TensorRng::seed_from(0);
/// let mut net = Network::builder(Shape::nchw(1, 3, 8, 8))
///     .conv2d(4, 3, 1, 1, &mut rng)?
///     .relu()
///     .global_avg_pool()
///     .linear(10, &mut rng)?
///     .build();
/// let scores = net.forward(&Tensor::zeros(Shape::nchw(1, 3, 8, 8)))?;
/// assert_eq!(scores.shape().dims(), &[1, 10]);
/// # Ok(())
/// # }
/// ```
pub struct Network {
    input_shape: Shape,
    layers: Vec<Box<dyn Layer>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("input_shape", &self.input_shape)
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Network {
    /// Starts building a network for inputs of `input_shape`
    /// (the batch dimension is a placeholder; any batch size runs).
    pub fn builder(input_shape: impl Into<Shape>) -> NetworkBuilder {
        let shape = input_shape.into();
        NetworkBuilder {
            input_shape: shape.clone(),
            current: Ok(shape),
            layers: Vec::new(),
        }
    }

    /// The per-image input shape the network was built for.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer names in execution order.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Inference-mode forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `input` does not fit the first layer.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, ShapeError> {
        self.forward_mode(input, Mode::Infer)
    }

    /// Forward pass in an explicit [`Mode`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes do not fit.
    pub fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, ShapeError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Read-only inference over a shared `&self`.
    ///
    /// Bit-identical to [`Network::forward`] but never mutates the
    /// network, so one network can serve several threads at once.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `input` does not fit the first layer.
    pub fn infer(&self, input: &Tensor) -> Result<Tensor, ShapeError> {
        let mut ws = Workspace::new();
        self.infer_with(input, &mut ws)
    }

    /// Read-only inference using caller-provided scratch space.
    ///
    /// Inter-layer activations are recycled through `ws`, so repeated
    /// calls (one per batch of a stream) run allocation-free in the
    /// steady state.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `input` does not fit the first layer.
    pub fn infer_with(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor, ShapeError> {
        let mut layers = self.layers.iter();
        let Some(first) = layers.next() else {
            return Ok(input.clone());
        };
        let mut x = first.infer(input, ws)?;
        for layer in layers {
            let y = layer.infer(&x, ws)?;
            ws.put(std::mem::replace(&mut x, y).into_vec());
        }
        Ok(x)
    }

    /// [`Network::infer_with`] with an optional per-layer span recorder
    /// already resolved to `(recorder, span names)`.
    fn infer_with_obs(
        &self,
        input: &Tensor,
        ws: &mut Workspace,
        obs: Option<(&dyn Recorder, &[String])>,
    ) -> Result<Tensor, ShapeError> {
        let Some((rec, names)) = obs else {
            return self.infer_with(input, ws);
        };
        let mut layers = self.layers.iter().enumerate();
        let Some((i0, first)) = layers.next() else {
            return Ok(input.clone());
        };
        let t0 = now_ns();
        let mut x = first.infer(input, ws)?;
        rec.record_span(&names[i0], t0, now_ns());
        for (i, layer) in layers {
            let t = now_ns();
            let y = layer.infer(&x, ws)?;
            rec.record_span(&names[i], t, now_ns());
            ws.put(std::mem::replace(&mut x, y).into_vec());
        }
        Ok(x)
    }

    /// Stable span names for per-layer host timing:
    /// `host.layer<i>.<name>`, with any character outside the obs schema
    /// alphabet replaced by `-`.
    fn layer_span_names(&self) -> Vec<String> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let name: String = l
                    .name()
                    .chars()
                    .map(|c| {
                        if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                            c
                        } else {
                            '-'
                        }
                    })
                    .collect();
                format!("host.layer{i}.{name}")
            })
            .collect()
    }

    /// Batched inference with a throwaway workspace.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `input` does not fit the first layer.
    pub fn infer_batch(&self, input: &Tensor) -> Result<Tensor, ShapeError> {
        self.infer_batch_with(input, Parallelism::sequential())
    }

    /// Batched inference, sharding rows of `input` across `par` scoped
    /// worker threads.
    ///
    /// Each shard walks its rows in cache-friendly sub-batches through a
    /// reused [`Workspace`]. Every layer computes batch items
    /// independently at inference time with the same kernels regardless
    /// of batch size, so the result is bit-identical to the sequential
    /// path at any thread count and any sub-batch size.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `input` does not fit the first layer.
    pub fn infer_batch_with(&self, input: &Tensor, par: Parallelism) -> Result<Tensor, ShapeError> {
        self.infer_batch_obs(input, par, &mp_obs::NULL_RECORDER)
    }

    /// [`Network::infer_batch_with`] with per-layer wall-time spans
    /// recorded into `rec` (names `host.layer<i>.<name>`, see
    /// `mp_obs::schema::SPAN_HOST_LAYER_PREFIX`).
    ///
    /// Recording is strictly passive: results are bit-identical to the
    /// uninstrumented path, and a disabled recorder costs one branch.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `input` does not fit the first layer.
    pub fn infer_batch_obs(
        &self,
        input: &Tensor,
        par: Parallelism,
        rec: &dyn Recorder,
    ) -> Result<Tensor, ShapeError> {
        let names;
        let obs: Option<(&dyn Recorder, &[String])> = if rec.enabled() {
            names = self.layer_span_names();
            Some((rec, names.as_slice()))
        } else {
            None
        };
        let n = if input.shape().rank() == 0 {
            0
        } else {
            input.shape().dim(0)
        };
        if n == 0 {
            let mut ws = Workspace::new();
            return self.infer_with_obs(input, &mut ws, obs);
        }
        let stride = input.len() / n;
        let xv = input.as_slice();
        let dims = input.shape().dims();
        let chunks = par.chunks(n);
        let parts: Vec<InferShard> = if chunks.len() <= 1 {
            vec![self.infer_rows(dims, xv, stride, obs)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|&(start, end)| {
                        let rows = &xv[start * stride..end * stride];
                        scope.spawn(move || self.infer_rows(dims, rows, stride, obs))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("inference worker panicked"))
                    .collect()
            })
        };
        let mut out: Option<(Vec<usize>, Vec<f32>)> = None;
        for part in parts {
            let (part_dims, part_data) = part?;
            match &mut out {
                None => out = Some((part_dims, part_data)),
                Some((dims, data)) => {
                    dims[0] += part_dims[0];
                    data.extend_from_slice(&part_data);
                }
            }
        }
        let (dims, data) = out.ok_or_else(|| {
            ShapeError::new(
                "Network::infer_batch_with",
                "parallel inference produced no shards",
            )
        })?;
        Tensor::from_vec(Shape::new(dims), data)
    }

    /// Runs a contiguous run of batch rows through the network in
    /// sub-batches of [`INFER_SUB_BATCH`] with one shared workspace, so
    /// inter-layer activations stay cache-resident instead of streaming
    /// a monolithic batch's worth of intermediates through memory.
    fn infer_rows(
        &self,
        dims: &[usize],
        rows: &[f32],
        stride: usize,
        obs: Option<(&dyn Recorder, &[String])>,
    ) -> InferShard {
        let count = rows.len() / stride.max(1);
        let mut ws = Workspace::new();
        let mut out: Option<(Vec<usize>, Vec<f32>)> = None;
        let mut start = 0;
        while start < count {
            let end = (start + INFER_SUB_BATCH).min(count);
            let mut sub_dims = dims.to_vec();
            sub_dims[0] = end - start;
            let mut buf = ws.take((end - start) * stride);
            buf.extend_from_slice(&rows[start * stride..end * stride]);
            let sub = Tensor::from_vec(Shape::new(sub_dims), buf)?;
            let y = self.infer_with_obs(&sub, &mut ws, obs)?;
            ws.put(sub.into_vec());
            match &mut out {
                None => {
                    let mut out_dims = y.shape().dims().to_vec();
                    let mut data = Vec::with_capacity(y.len() / (end - start) * count);
                    data.extend_from_slice(y.as_slice());
                    out_dims[0] = end - start;
                    out = Some((out_dims, data));
                }
                Some((out_dims, data)) => {
                    out_dims[0] += y.shape().dim(0);
                    data.extend_from_slice(y.as_slice());
                }
            }
            ws.put(y.into_vec());
            start = end;
        }
        out.ok_or_else(|| ShapeError::new("Network::infer_batch_with", "empty shard"))
    }

    /// Backpropagates a loss gradient through all layers.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when no training-mode forward preceded this
    /// call or the gradient shape is wrong.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, ShapeError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Visits every `(parameter, gradient)` pair in a fixed order.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    /// Visits every parameter (and persistent statistic) tensor
    /// read-only, tagged with its layer index — the scan mp-verify's
    /// NaN/Inf taint pass runs over a shared `&Network`.
    pub fn visit_layer_params(&self, visitor: &mut dyn FnMut(usize, &Tensor)) {
        for (i, layer) in self.layers.iter().enumerate() {
            layer.visit_params_ref(&mut |t| visitor(i, t));
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Output shape for a given input shape without running the network.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes do not fit.
    pub fn output_shape(&self, input: &Shape) -> Result<Shape, ShapeError> {
        let mut s = input.clone();
        for layer in &self.layers {
            s = layer.output_shape(&s)?;
        }
        Ok(s)
    }

    /// Per-layer `(name, cost)` for one single-image inference.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the stored input shape no longer fits.
    pub fn layer_costs(&self) -> Result<Vec<(String, LayerCost)>, ShapeError> {
        let mut s = self.input_shape.clone();
        let mut out = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            out.push((layer.name(), layer.cost(&s)?));
            s = layer.output_shape(&s)?;
        }
        Ok(out)
    }

    /// Total single-image inference cost.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the stored input shape no longer fits.
    pub fn total_cost(&self) -> Result<LayerCost, ShapeError> {
        Ok(self.layer_costs()?.into_iter().map(|(_, c)| c).sum())
    }

    /// Predicted class (argmax) per row of a `[N, classes]` score matrix.
    ///
    /// NaN scores are skipped rather than poisoning the comparison; a row
    /// with no comparable score at all (empty or all-NaN) is an error
    /// instead of silently predicting class 0.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `scores` is not rank-2 or a row contains
    /// no comparable (non-NaN) score.
    pub fn argmax_rows(scores: &Tensor) -> Result<Vec<usize>, ShapeError> {
        if scores.shape().rank() != 2 {
            return Err(ShapeError::new(
                "argmax_rows",
                format!("expected [N,classes], got {}", scores.shape()),
            ));
        }
        let (n, k) = (scores.shape().dim(0), scores.shape().dim(1));
        let mut out = Vec::with_capacity(n);
        for row in 0..n {
            let slice = &scores.as_slice()[row * k..(row + 1) * k];
            let best = nan_aware_argmax(slice).ok_or_else(|| {
                ShapeError::new(
                    "argmax_rows",
                    format!("row {row} has no comparable score (empty or all NaN)"),
                )
            })?;
            out.push(best);
        }
        Ok(out)
    }
}

/// Incremental builder for [`Network`], tracking the activation shape.
///
/// Fallible steps (those that must fit the current shape) return
/// `Result<NetworkBuilder, ShapeError>` so chains read naturally with `?`.
pub struct NetworkBuilder {
    input_shape: Shape,
    current: Result<Shape, ShapeError>,
    layers: Vec<Box<dyn Layer>>,
}

impl fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkBuilder")
            .field("input_shape", &self.input_shape)
            .field("layers", &self.layers.len())
            .finish()
    }
}

impl NetworkBuilder {
    fn current(&self) -> Result<&Shape, ShapeError> {
        self.current.as_ref().map_err(Clone::clone)
    }

    /// Appends an arbitrary layer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the layer rejects the current shape.
    pub fn push(mut self, layer: Box<dyn Layer>) -> Result<Self, ShapeError> {
        let next = layer.output_shape(self.current()?)?;
        self.current = Ok(next);
        self.layers.push(layer);
        Ok(self)
    }

    /// Appends a [`Conv2d`] layer, inferring the input channel count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the current shape is not NCHW or the
    /// kernel does not fit.
    pub fn conv2d(
        self,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut TensorRng,
    ) -> Result<Self, ShapeError> {
        let shape = self.current()?;
        if shape.rank() != 4 {
            return Err(ShapeError::new(
                "NetworkBuilder::conv2d",
                format!("expected NCHW activations, got {shape}"),
            ));
        }
        let conv = Conv2d::new(shape.dim(1), out_channels, kernel, stride, padding, rng)?;
        self.push(Box::new(conv))
    }

    /// Appends a [`Linear`] layer, inferring the input feature count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the current shape is not `[N, features]`.
    pub fn linear(self, out_features: usize, rng: &mut TensorRng) -> Result<Self, ShapeError> {
        let shape = self.current()?;
        if shape.rank() != 2 {
            return Err(ShapeError::new(
                "NetworkBuilder::linear",
                format!("expected flattened activations, got {shape}; call flatten() first"),
            ));
        }
        let fc = Linear::new(shape.dim(1), out_features, rng)?;
        self.push(Box::new(fc))
    }

    /// Appends a ReLU activation.
    pub fn relu(self) -> Self {
        self.push_infallible(Box::new(Relu::new()))
    }

    /// Appends a sigmoid activation.
    pub fn sigmoid(self) -> Self {
        self.push_infallible(Box::new(Sigmoid::new()))
    }

    /// Appends a softmax output layer.
    pub fn softmax(self) -> Self {
        self.push_infallible(Box::new(Softmax::new()))
    }

    /// Appends non-overlapping `k×k` max pooling.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the window does not fit.
    pub fn max_pool(self, k: usize) -> Result<Self, ShapeError> {
        self.push(Box::new(MaxPool2d::new(k, k)?))
    }

    /// Appends `k×k` max pooling with explicit `stride`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the window does not fit.
    pub fn max_pool_stride(self, k: usize, stride: usize) -> Result<Self, ShapeError> {
        self.push(Box::new(MaxPool2d::new(k, stride)?))
    }

    /// Appends `k×k` average pooling with explicit `stride`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the window does not fit.
    pub fn avg_pool(self, k: usize, stride: usize) -> Result<Self, ShapeError> {
        self.push(Box::new(AvgPool2d::new(k, stride)?))
    }

    /// Appends global average pooling (`[N,C,H,W] → [N,C]`).
    pub fn global_avg_pool(self) -> Self {
        self.push_infallible(Box::new(GlobalAvgPool::new()))
    }

    /// Appends a flatten layer.
    pub fn flatten(self) -> Self {
        self.push_infallible(Box::new(Flatten::new()))
    }

    /// Appends batch normalisation over the current channel/feature axis.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the current shape is not rank-2/4.
    pub fn batch_norm(self) -> Result<Self, ShapeError> {
        let shape = self.current()?;
        let features = match shape.rank() {
            2 | 4 => shape.dim(1),
            _ => {
                return Err(ShapeError::new(
                    "NetworkBuilder::batch_norm",
                    format!("expected rank-2/4 activations, got {shape}"),
                ))
            }
        };
        self.push(Box::new(BatchNorm::new(features, 0.9, 1e-5)?))
    }

    /// Appends cross-channel local response normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `size` is invalid or activations are
    /// not NCHW.
    pub fn lrn(self, size: usize, alpha: f32, beta: f32, k: f32) -> Result<Self, ShapeError> {
        self.push(Box::new(LocalResponseNorm::new(size, alpha, beta, k)?))
    }

    /// Appends inverted dropout with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `p` is outside `[0, 1)`.
    pub fn dropout(self, p: f32, seed: u64) -> Result<Self, ShapeError> {
        self.push(Box::new(Dropout::new(p, seed)?))
    }

    fn push_infallible(mut self, layer: Box<dyn Layer>) -> Self {
        match layer.output_shape(match &self.current {
            Ok(s) => s,
            Err(_) => return self,
        }) {
            Ok(next) => {
                self.current = Ok(next);
                self.layers.push(layer);
            }
            Err(e) => self.current = Err(e),
        }
        self
    }

    /// The activation shape after the layers added so far.
    ///
    /// # Errors
    ///
    /// Returns the first deferred [`ShapeError`] from an infallible-style
    /// step ([`relu`](Self::relu) etc. defer their errors to here or to
    /// [`build`](Self::build)-time forward passes).
    pub fn shape(&self) -> Result<Shape, ShapeError> {
        self.current.clone()
    }

    /// Finishes the network.
    ///
    /// # Panics
    ///
    /// Panics if a deferred shape error from an infallible-style step is
    /// pending; use [`try_build`](Self::try_build) (or check
    /// [`shape`](Self::shape)) to handle it gracefully.
    pub fn build(self) -> Network {
        match self.try_build() {
            Ok(net) => net,
            Err(e) => panic!("network builder has a deferred shape error: {e}"),
        }
    }

    /// Finishes the network, surfacing any deferred shape error as a
    /// typed result instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`ShapeError`] recorded by an infallible-style
    /// builder step.
    pub fn try_build(self) -> Result<Network, ShapeError> {
        self.current?;
        Ok(Network {
            input_shape: self.input_shape,
            layers: self.layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::seed_from(33)
    }

    #[test]
    fn builder_tracks_shapes() {
        let mut r = rng();
        let b = Network::builder(Shape::nchw(1, 3, 32, 32))
            .conv2d(64, 3, 1, 0, &mut r)
            .unwrap()
            .relu()
            .max_pool(2)
            .unwrap()
            .flatten();
        assert_eq!(b.shape().unwrap().dims(), &[1, 64 * 15 * 15]);
    }

    #[test]
    fn forward_backward_roundtrip() {
        let mut r = rng();
        let mut net = Network::builder(Shape::nchw(1, 1, 6, 6))
            .conv2d(2, 3, 1, 0, &mut r)
            .unwrap()
            .relu()
            .flatten()
            .linear(3, &mut r)
            .unwrap()
            .build();
        let x = r.normal(Shape::nchw(2, 1, 6, 6), 0.0, 1.0);
        let y = net.forward_mode(&x, Mode::Train).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        let dx = net.backward(&Tensor::ones([2, 3])).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn visit_params_counts_layers() {
        let mut r = rng();
        let mut net = Network::builder(Shape::nchw(1, 1, 6, 6))
            .conv2d(2, 3, 1, 0, &mut r)
            .unwrap()
            .flatten()
            .linear(3, &mut r)
            .unwrap()
            .build();
        let mut count = 0;
        net.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 4); // conv w+b, linear w+b
    }

    #[test]
    fn output_shape_matches_forward() {
        let mut r = rng();
        let mut net = Network::builder(Shape::nchw(1, 3, 16, 16))
            .conv2d(8, 3, 1, 1, &mut r)
            .unwrap()
            .max_pool(2)
            .unwrap()
            .global_avg_pool()
            .build();
        let input = Shape::nchw(5, 3, 16, 16);
        let predicted = net.output_shape(&input).unwrap();
        let actual = net.forward(&Tensor::zeros(input)).unwrap();
        assert_eq!(&predicted, actual.shape());
    }

    #[test]
    fn costs_accumulate() {
        let mut r = rng();
        let net = Network::builder(Shape::nchw(1, 3, 8, 8))
            .conv2d(4, 3, 1, 0, &mut r)
            .unwrap()
            .flatten()
            .linear(10, &mut r)
            .unwrap()
            .build();
        let per_layer = net.layer_costs().unwrap();
        assert_eq!(per_layer.len(), 3);
        let total = net.total_cost().unwrap();
        assert_eq!(
            total.macs,
            per_layer.iter().map(|(_, c)| c.macs).sum::<u64>()
        );
        assert!(total.macs > 0);
    }

    #[test]
    fn argmax_rows_basic() {
        let scores = Tensor::from_vec([2, 3], vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.3]).unwrap();
        assert_eq!(Network::argmax_rows(&scores).unwrap(), vec![1, 0]);
        assert!(Network::argmax_rows(&Tensor::zeros([3])).is_err());
    }

    #[test]
    fn argmax_rows_skips_nan_and_rejects_all_nan_rows() {
        // A NaN score must not hijack the comparison: the best finite
        // score wins even when class 0 is NaN.
        let scores =
            Tensor::from_vec([2, 3], vec![f32::NAN, 0.2, 0.9, -1.0, f32::NAN, -2.0]).unwrap();
        assert_eq!(Network::argmax_rows(&scores).unwrap(), vec![2, 0]);
        // An all-NaN row used to silently predict class 0; now it errors.
        let poisoned = Tensor::from_vec([1, 2], vec![f32::NAN, f32::NAN]).unwrap();
        let err = Network::argmax_rows(&poisoned).unwrap_err();
        assert!(err.to_string().contains("NaN"));
    }

    fn sample_net(r: &mut TensorRng) -> Network {
        Network::builder(Shape::nchw(1, 2, 8, 8))
            .conv2d(4, 3, 1, 1, r)
            .unwrap()
            .batch_norm()
            .unwrap()
            .relu()
            .max_pool(2)
            .unwrap()
            .conv2d(6, 3, 1, 0, r)
            .unwrap()
            .relu()
            .flatten()
            .linear(10, r)
            .unwrap()
            .softmax()
            .build()
    }

    #[test]
    fn infer_is_bit_identical_to_forward() {
        let mut r = rng();
        let mut net = sample_net(&mut r);
        let x = r.normal(Shape::nchw(5, 2, 8, 8), 0.0, 1.0);
        let expected = net.forward(&x).unwrap();
        let got = net.infer(&x).unwrap();
        assert_eq!(expected.shape(), got.shape());
        assert_eq!(expected.as_slice(), got.as_slice());
    }

    #[test]
    fn infer_with_reuses_workspace_buffers() {
        let mut r = rng();
        let net = sample_net(&mut r);
        let x = r.normal(Shape::nchw(2, 2, 8, 8), 0.0, 1.0);
        let mut ws = Workspace::new();
        let first = net.infer_with(&x, &mut ws).unwrap();
        assert!(ws.pooled() > 0, "inference should recycle buffers");
        let second = net.infer_with(&x, &mut ws).unwrap();
        assert_eq!(first.as_slice(), second.as_slice());
    }

    #[test]
    fn parallel_batched_inference_matches_sequential_bit_for_bit() {
        let mut r = rng();
        let net = sample_net(&mut r);
        for batch in [1usize, 2, 5, 8] {
            let x = r.normal(Shape::nchw(batch, 2, 8, 8), 0.0, 1.0);
            let sequential = net.infer_batch(&x).unwrap();
            for threads in [2usize, 3, 7] {
                let parallel = net.infer_batch_with(&x, Parallelism::new(threads)).unwrap();
                assert_eq!(sequential.shape(), parallel.shape());
                assert_eq!(
                    sequential.as_slice(),
                    parallel.as_slice(),
                    "batch {batch} × {threads} threads diverged"
                );
            }
        }
    }

    #[test]
    fn instrumented_inference_is_bit_identical_and_records_layers() {
        let mut r = rng();
        let net = sample_net(&mut r);
        let x = r.normal(Shape::nchw(5, 2, 8, 8), 0.0, 1.0);
        let plain = net.infer_batch(&x).unwrap();
        let rec = mp_obs::SharedRecorder::new();
        let obs = net.infer_batch_obs(&x, Parallelism::new(2), &rec).unwrap();
        assert_eq!(plain.as_slice(), obs.as_slice());
        let report = rec.report();
        assert_eq!(report.spans.len(), net.num_layers());
        assert!(report.span("host.layer0.3x3-conv-4").is_some());
        mp_obs::schema::validate_report(&report).unwrap();
    }

    #[test]
    fn linear_requires_flattened_input() {
        let mut r = rng();
        let res = Network::builder(Shape::nchw(1, 1, 4, 4)).linear(10, &mut r);
        assert!(res.is_err());
    }

    #[test]
    #[should_panic(expected = "deferred shape error")]
    fn deferred_error_panics_at_build() {
        // Softmax on NCHW activations is invalid; error surfaces at build.
        let _ = Network::builder(Shape::nchw(1, 1, 4, 4)).softmax().build();
    }

    #[test]
    fn debug_output_lists_layers() {
        let mut r = rng();
        let net = Network::builder(Shape::nchw(1, 1, 6, 6))
            .conv2d(2, 3, 1, 0, &mut r)
            .unwrap()
            .build();
        assert!(format!("{net:?}").contains("3x3-conv-2"));
    }
}
