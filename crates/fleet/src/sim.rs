//! The virtual-time fleet simulator: N replicas behind a router,
//! discrete-event execution of arrivals, dispatches, completions,
//! replica faults and hedge timers.
//!
//! # Functional model
//!
//! Every replica runs the *same functional* multi-precision pipeline,
//! so predictions are bit-identical across the fleet and to a
//! single-replica run; replicas differ only in how long a batch takes.
//! The functional results come from one real `execute` over the image
//! store (a [`PredictionCache`]); a dispatched batch is then priced
//! with the paper's `async`/`wait` overlap model
//! ([`mp_core::modeled_batch_time`]) under the replica's own
//! [`PipelineTiming`](mp_core::PipelineTiming) — a host-only replica is
//! simply one whose BNN stage runs at host speed.
//!
//! # Event ordering
//!
//! Events are processed in `(time, kind, replica)` order with a fixed
//! kind priority — completions, then scheduled faults, then hedge
//! timers, then dispatches — so a run is a pure function of `(trace,
//! specs, config, fault plan)` and replays byte-identically.
//!
//! # Exactly-once guarantee
//!
//! Every offered request ends in exactly one of two ledgers: a winning
//! completion or an explicit shed. Copies (hedges, crash re-routes) are
//! deduplicated deterministically — the first completed copy wins, the
//! losers are discarded and counted, and a crash hands every orphaned
//! copy back to the router (re-enqueue or shed, never a silent drop).

use std::collections::{HashMap, VecDeque};

use mp_core::fault::{FleetFaultPlan, ReplicaFault, ReplicaFaultEvent};
use mp_core::{modeled_batch_time, PipelineResult};
use mp_obs::{schema, Recorder};
use mp_serve::{AdmissionQueue, Enqueue, Request};

use crate::replica::{FleetBreaker, ReplicaSpec};
use crate::report::{FleetCompletion, FleetReport, FleetTimelineEvent, ReplicaStats, TimelineKind};
use crate::router::{Candidate, Router, RoutingPolicy};
use crate::FleetError;

/// Functional results of the pipeline over the image store, computed
/// once by a real run and looked up per request: the prediction each
/// image gets, and whether the DMU flags it for host re-inference
/// (which drives the batch service-time model).
#[derive(Debug, Clone)]
pub struct PredictionCache {
    predictions: Vec<usize>,
    flagged: Vec<bool>,
}

impl PredictionCache {
    /// Creates a cache from parallel per-image vectors.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] when the vectors are empty or of
    /// different lengths.
    pub fn new(predictions: Vec<usize>, flagged: Vec<bool>) -> Result<Self, FleetError> {
        if predictions.is_empty() {
            return Err(FleetError::Config("prediction cache is empty".into()));
        }
        if predictions.len() != flagged.len() {
            return Err(FleetError::Config(format!(
                "predictions ({}) and flagged ({}) lengths differ",
                predictions.len(),
                flagged.len()
            )));
        }
        Ok(Self {
            predictions,
            flagged,
        })
    }

    /// Builds the cache from a finished pipeline run — the canonical
    /// path: run `MultiPrecisionPipeline::execute` once over the store,
    /// then serve millions of requests against its results.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] when the result carries no images.
    pub fn from_result(result: &PipelineResult) -> Result<Self, FleetError> {
        Self::new(result.predictions.clone(), result.flagged.clone())
    }

    /// Number of images in the store.
    pub fn len(&self) -> usize {
        self.predictions.len()
    }

    /// Whether the cache is empty (never true for a constructed cache).
    pub fn is_empty(&self) -> bool {
        self.predictions.is_empty()
    }

    /// The pipeline's prediction for `image`.
    pub fn prediction(&self, image: usize) -> usize {
        self.predictions[image]
    }

    /// Whether the DMU flags `image` for host re-inference.
    pub fn is_flagged(&self, image: usize) -> bool {
        self.flagged[image]
    }
}

/// Fleet-wide configuration: routing policy, breaker knobs, the
/// latency deadline, and optional hedging.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// How the router picks replicas.
    pub policy: RoutingPolicy,
    /// Per-replica circuit-breaker knobs.
    pub breaker: crate::replica::BreakerConfig,
    /// Per-request latency deadline in virtual seconds (p99-derived in
    /// the load generator): a completed batch containing a request over
    /// deadline counts as a breaker failure on its replica.
    pub deadline_s: f64,
    /// Hedge a request still unserved this long after arrival: issue
    /// one duplicate copy on a different replica and let the first
    /// completion win. `None` disables hedging.
    pub hedge_after_s: Option<f64>,
}

impl FleetConfig {
    /// A config under `policy` with default breaker, a 1 s deadline and
    /// hedging off.
    pub fn new(policy: RoutingPolicy) -> Self {
        Self {
            policy,
            breaker: crate::replica::BreakerConfig::default(),
            deadline_s: 1.0,
            hedge_after_s: None,
        }
    }

    /// Sets the breaker knobs.
    #[must_use]
    pub fn with_breaker(mut self, breaker: crate::replica::BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Sets the per-request latency deadline.
    #[must_use]
    pub fn with_deadline_s(mut self, deadline_s: f64) -> Self {
        self.deadline_s = deadline_s;
        self
    }

    /// Enables hedging after `hedge_after_s` virtual seconds.
    #[must_use]
    pub fn with_hedge_after_s(mut self, hedge_after_s: f64) -> Self {
        self.hedge_after_s = Some(hedge_after_s);
        self
    }

    fn validate(&self) -> Result<(), FleetError> {
        if !self.deadline_s.is_finite() || self.deadline_s <= 0.0 {
            return Err(FleetError::Config(format!(
                "deadline_s {} must be finite and positive",
                self.deadline_s
            )));
        }
        if let Some(h) = self.hedge_after_s {
            if !h.is_finite() || h <= 0.0 {
                return Err(FleetError::Config(format!(
                    "hedge_after_s {h} must be finite and positive"
                )));
            }
        }
        Ok(())
    }
}

/// The fleet: replica specs + fleet config + the functional cache.
/// [`run`](Self::run) is pure — the same inputs replay byte-identically.
#[derive(Debug, Clone)]
pub struct FleetSim {
    specs: Vec<ReplicaSpec>,
    config: FleetConfig,
    cache: PredictionCache,
}

impl FleetSim {
    /// Creates a fleet.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] on an empty spec list or invalid
    /// config.
    pub fn new(
        specs: Vec<ReplicaSpec>,
        config: FleetConfig,
        cache: PredictionCache,
    ) -> Result<Self, FleetError> {
        if specs.is_empty() {
            return Err(FleetError::Config(
                "fleet needs at least one replica".into(),
            ));
        }
        config.validate()?;
        Ok(Self {
            specs,
            config,
            cache,
        })
    }

    /// The replica specs.
    pub fn specs(&self) -> &[ReplicaSpec] {
        &self.specs
    }

    /// The fleet config.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the trace through the fleet under `plan`, recording
    /// `fleet.*` metrics on `rec`.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] on an invalid fault plan (bad
    /// times/factors or replica index out of bounds) and
    /// [`FleetError::Trace`] on an invalid trace (unsorted or
    /// non-finite arrivals, duplicate ids, image out of range).
    pub fn run(
        &self,
        trace: &[Request],
        plan: &FleetFaultPlan,
        rec: &dyn Recorder,
    ) -> Result<FleetReport, FleetError> {
        plan.validate()
            .map_err(|e| FleetError::Config(e.to_string()))?;
        for ev in &plan.events {
            if ev.replica >= self.specs.len() {
                return Err(FleetError::Config(format!(
                    "fault plan names replica {} but the fleet has {}",
                    ev.replica,
                    self.specs.len()
                )));
            }
        }
        let mut engine = Engine::new(self, plan.sorted_events(), rec);
        engine.validate_and_index(trace)?;
        for r in trace {
            engine.advance(r.arrival_s);
            engine.admit(r);
        }
        engine.advance(f64::INFINITY);
        Ok(engine.into_report())
    }
}

/// A batch in flight on one replica.
#[derive(Debug)]
struct InFlight {
    members: Vec<Request>,
    dispatch_s: f64,
    completion_s: f64,
}

/// Runtime state of one replica.
struct ReplicaRt {
    queue: AdmissionQueue,
    breaker: FleetBreaker,
    up: bool,
    slow_factor: f64,
    free_s: f64,
    in_flight: Option<InFlight>,
    stats: ReplicaStats,
}

/// Replica indices holding live copies of one request (at most two:
/// the original and one hedge).
#[derive(Debug, Clone, Copy)]
struct Copies {
    slots: [usize; 2],
}

const NO_REPLICA: usize = usize::MAX;

impl Copies {
    fn none() -> Self {
        Self {
            slots: [NO_REPLICA; 2],
        }
    }

    fn add(&mut self, replica: usize) {
        for s in &mut self.slots {
            if *s == NO_REPLICA {
                *s = replica;
                return;
            }
        }
        unreachable!("a request never has more than two live copies");
    }

    fn remove(&mut self, replica: usize) {
        for s in &mut self.slots {
            if *s == replica {
                *s = NO_REPLICA;
                return;
            }
        }
    }

    fn count(&self) -> usize {
        self.slots.iter().filter(|&&s| s != NO_REPLICA).count()
    }

    fn contains(&self, replica: usize) -> bool {
        self.slots.contains(&replica)
    }
}

/// Per-request ledger entry.
struct Track {
    id: u64,
    image: usize,
    arrival_s: f64,
    copies: Copies,
    hedged: bool,
    hedge_replica: usize,
    done: bool,
    shed: bool,
}

/// Event kinds in processing-priority order at equal times.
const KIND_COMPLETION: u8 = 0;
const KIND_FAULT: u8 = 1;
const KIND_HEDGE: u8 = 2;
const KIND_DISPATCH: u8 = 3;

struct Engine<'a> {
    specs: &'a [ReplicaSpec],
    cfg: &'a FleetConfig,
    cache: &'a PredictionCache,
    rec: &'a dyn Recorder,
    reps: Vec<ReplicaRt>,
    router: Router,
    tracks: Vec<Track>,
    index_of: HashMap<u64, usize>,
    fault_events: Vec<ReplicaFaultEvent>,
    next_fault: usize,
    hedge_fifo: VecDeque<usize>,
    replica_ctrs: Vec<(String, String)>,
    completions: Vec<FleetCompletion>,
    shed: Vec<u64>,
    timeline: Vec<FleetTimelineEvent>,
    requests: usize,
    redirected: usize,
    hedges: usize,
    hedge_wins: usize,
    duplicates_discarded: usize,
    now_s: f64,
}

impl<'a> Engine<'a> {
    fn new(sim: &'a FleetSim, fault_events: Vec<ReplicaFaultEvent>, rec: &'a dyn Recorder) -> Self {
        let reps = sim
            .specs
            .iter()
            .map(|spec| ReplicaRt {
                queue: AdmissionQueue::new(spec.queue_capacity()),
                breaker: FleetBreaker::new(sim.config.breaker),
                up: true,
                slow_factor: 1.0,
                free_s: 0.0,
                in_flight: None,
                stats: ReplicaStats {
                    name: spec.name().to_string(),
                    ..ReplicaStats::default()
                },
            })
            .collect();
        let replica_ctrs = (0..sim.specs.len())
            .map(|i| {
                let prefix = schema::CTR_FLEET_REPLICA_PREFIX;
                (
                    format!("{prefix}{i}.served"),
                    format!("{prefix}{i}.redirected"),
                )
            })
            .collect();
        Self {
            specs: &sim.specs,
            cfg: &sim.config,
            cache: &sim.cache,
            rec,
            reps,
            router: Router::new(sim.config.policy, sim.specs.len()),
            tracks: Vec::new(),
            index_of: HashMap::new(),
            fault_events,
            next_fault: 0,
            hedge_fifo: VecDeque::new(),
            replica_ctrs,
            completions: Vec::new(),
            shed: Vec::new(),
            timeline: Vec::new(),
            requests: 0,
            redirected: 0,
            hedges: 0,
            hedge_wins: 0,
            duplicates_discarded: 0,
            now_s: 0.0,
        }
    }

    fn validate_and_index(&mut self, trace: &[Request]) -> Result<(), FleetError> {
        self.tracks.reserve(trace.len());
        self.index_of.reserve(trace.len());
        let mut prev = f64::NEG_INFINITY;
        for (i, r) in trace.iter().enumerate() {
            if !r.arrival_s.is_finite() || r.arrival_s < 0.0 {
                return Err(FleetError::Trace(format!(
                    "request {i}: arrival {} invalid",
                    r.arrival_s
                )));
            }
            if r.arrival_s < prev {
                return Err(FleetError::Trace(format!(
                    "request {i}: arrivals not sorted ({} after {prev})",
                    r.arrival_s
                )));
            }
            prev = r.arrival_s;
            if r.image >= self.cache.len() {
                return Err(FleetError::Trace(format!(
                    "request {i}: image {} outside store of {}",
                    r.image,
                    self.cache.len()
                )));
            }
            if self.index_of.contains_key(&r.id) {
                return Err(FleetError::Trace(format!(
                    "request {i}: duplicate id {}",
                    r.id
                )));
            }
            // Reserve the ledger slot up front; `admit` fills it.
            self.index_of.insert(r.id, NO_REPLICA);
        }
        self.index_of.clear();
        Ok(())
    }

    fn ix(&self, id: u64) -> usize {
        *self.index_of.get(&id).expect("tracked request id")
    }

    /// Healthy routable candidates at `now`, excluding replicas already
    /// holding a copy of the request (`exclude`).
    fn candidates(&self, exclude: &Copies) -> Vec<Candidate> {
        self.reps
            .iter()
            .enumerate()
            .filter(|(i, rep)| {
                rep.up
                    && !exclude.contains(*i)
                    && rep.breaker.would_admit(self.now_s)
                    && rep.queue.len() < rep.queue.capacity()
            })
            .map(|(i, rep)| Candidate {
                index: i,
                kind: self.specs[i].kind(),
                outstanding: rep.queue.len()
                    + rep.in_flight.as_ref().map_or(0, |f| f.members.len()),
            })
            .collect()
    }

    /// Routes a copy of the tracked request onto a healthy replica and
    /// enqueues it there. Returns the chosen replica.
    fn place_copy(&mut self, track_idx: usize, enqueue_s: f64) -> Option<usize> {
        let exclude = self.tracks[track_idx].copies;
        let cands = self.candidates(&exclude);
        let chosen = self.router.route(&cands)?;
        let tr = &mut self.tracks[track_idx];
        let request = Request::new(tr.id, tr.image, enqueue_s);
        tr.copies.add(chosen);
        let rep = &mut self.reps[chosen];
        rep.breaker.on_admitted(enqueue_s);
        let outcome = rep.queue.offer(request);
        debug_assert_eq!(outcome, Enqueue::Accepted, "candidate had room");
        Some(chosen)
    }

    fn admit(&mut self, r: &Request) {
        self.now_s = self.now_s.max(r.arrival_s);
        self.requests += 1;
        if self.rec.enabled() {
            self.rec.add(schema::CTR_FLEET_REQUESTS, 1);
        }
        let track_idx = self.tracks.len();
        self.tracks.push(Track {
            id: r.id,
            image: r.image,
            arrival_s: r.arrival_s,
            copies: Copies::none(),
            hedged: false,
            hedge_replica: NO_REPLICA,
            done: false,
            shed: false,
        });
        self.index_of.insert(r.id, track_idx);
        if self.place_copy(track_idx, r.arrival_s).is_some() {
            if self.cfg.hedge_after_s.is_some() {
                self.hedge_fifo.push_back(track_idx);
            }
        } else {
            self.tracks[track_idx].shed = true;
            self.shed.push(r.id);
            if self.rec.enabled() {
                self.rec.add(schema::CTR_FLEET_SHED, 1);
            }
        }
    }

    /// Time at which replica `i` would dispatch its next batch, if it
    /// can: the serve batcher's rule — wait for a full batch or the
    /// head's max delay, whichever first, but never before the server
    /// frees up.
    fn dispatch_due(&self, i: usize) -> Option<f64> {
        let rep = &self.reps[i];
        if !rep.up || rep.in_flight.is_some() || rep.queue.is_empty() {
            return None;
        }
        let spec = &self.specs[i];
        let head = rep.queue.arrival_at(0).expect("non-empty queue");
        let mut ready = head + spec.max_delay_s();
        if rep.queue.len() >= spec.max_batch() {
            let full_at = rep
                .queue
                .arrival_at(spec.max_batch() - 1)
                .expect("max_batch-th present");
            ready = ready.min(full_at);
        }
        Some(ready.max(rep.free_s).max(self.now_s))
    }

    /// Earliest hedge deadline among live, unhedged requests (the FIFO
    /// is deadline-sorted because deadlines are arrival + a constant).
    fn peek_hedge(&mut self) -> Option<(f64, usize)> {
        let hedge_after = self.cfg.hedge_after_s?;
        while let Some(&idx) = self.hedge_fifo.front() {
            let tr = &self.tracks[idx];
            if tr.done || tr.shed || tr.hedged || tr.copies.count() == 0 {
                self.hedge_fifo.pop_front();
                continue;
            }
            return Some((tr.arrival_s + hedge_after, idx));
        }
        None
    }

    /// Picks and processes the next due event at or before `until`,
    /// repeating until nothing is due.
    fn advance(&mut self, until: f64) {
        loop {
            let mut best: Option<(f64, u8, usize)> = None;
            let consider = |cand: (f64, u8, usize), best: &mut Option<(f64, u8, usize)>| {
                if best.is_none_or(|b| (cand.0, cand.1, cand.2) < b) {
                    *best = Some(cand);
                }
            };
            for (i, rep) in self.reps.iter().enumerate() {
                if let Some(inf) = &rep.in_flight {
                    consider((inf.completion_s, KIND_COMPLETION, i), &mut best);
                }
            }
            if let Some(ev) = self.fault_events.get(self.next_fault) {
                consider((ev.at_s, KIND_FAULT, ev.replica), &mut best);
            }
            if let Some((deadline, idx)) = self.peek_hedge() {
                consider((deadline, KIND_HEDGE, idx), &mut best);
            }
            for i in 0..self.reps.len() {
                if let Some(t) = self.dispatch_due(i) {
                    consider((t, KIND_DISPATCH, i), &mut best);
                }
            }
            let Some((t, kind, idx)) = best else { return };
            if t > until {
                return;
            }
            self.now_s = self.now_s.max(t);
            match kind {
                KIND_COMPLETION => self.complete(idx),
                KIND_FAULT => self.apply_fault(),
                KIND_HEDGE => self.hedge(idx),
                KIND_DISPATCH => self.dispatch(idx),
                _ => unreachable!(),
            }
        }
    }

    fn dispatch(&mut self, i: usize) {
        let t = self.dispatch_due(i).expect("dispatch event was due");
        let spec = &self.specs[i];
        let raw = self.reps[i].queue.drain_batch(spec.max_batch());
        let mut members = Vec::with_capacity(raw.len());
        for m in raw {
            let idx = self.ix(m.id);
            let tr = &mut self.tracks[idx];
            if tr.done {
                // A copy of an already-served request (its hedge or
                // redirect twin won elsewhere): discard deterministically.
                tr.copies.remove(i);
                self.duplicates_discarded += 1;
                continue;
            }
            members.push(m);
        }
        if members.is_empty() {
            return;
        }
        let kept: Vec<bool> = members
            .iter()
            .map(|m| !self.cache.is_flagged(m.image))
            .collect();
        let service_s = modeled_batch_time(&kept, spec.timing()) * self.reps[i].slow_factor;
        let completion_s = t + service_s;
        let rep = &mut self.reps[i];
        rep.free_s = completion_s;
        rep.in_flight = Some(InFlight {
            members,
            dispatch_s: t,
            completion_s,
        });
    }

    fn complete(&mut self, i: usize) {
        let inf = self.reps[i].in_flight.take().expect("completion was due");
        let enabled = self.rec.enabled();
        {
            let stats = &mut self.reps[i].stats;
            stats.batches += 1;
            stats.busy_s += inf.completion_s - inf.dispatch_s;
        }
        if enabled {
            self.rec.record_span(
                schema::SPAN_FLEET_BATCH,
                virt_ns(inf.dispatch_s),
                virt_ns(inf.completion_s),
            );
            self.rec
                .observe(schema::HIST_FLEET_BATCH_SIZE, inf.members.len() as f64);
        }
        let mut any_late = false;
        for m in &inf.members {
            let idx = self.ix(m.id);
            let tr = &mut self.tracks[idx];
            tr.copies.remove(i);
            if tr.done {
                self.duplicates_discarded += 1;
                continue;
            }
            tr.done = true;
            let latency_s = inf.completion_s - tr.arrival_s;
            if latency_s > self.cfg.deadline_s {
                any_late = true;
            }
            let hedge_won = tr.hedge_replica == i;
            if hedge_won {
                self.hedge_wins += 1;
            }
            self.completions.push(FleetCompletion {
                id: tr.id,
                image: tr.image,
                prediction: self.cache.prediction(tr.image),
                arrival_s: tr.arrival_s,
                dispatch_s: inf.dispatch_s,
                completion_s: inf.completion_s,
                replica: i,
                hedge_won,
            });
            self.reps[i].stats.served += 1;
            if enabled {
                self.rec.add(schema::CTR_FLEET_SERVED, 1);
                self.rec.add(&self.replica_ctrs[i].0, 1);
                if hedge_won {
                    self.rec.add(schema::CTR_FLEET_HEDGE_WINS, 1);
                }
                self.rec.observe(schema::HIST_FLEET_LATENCY_S, latency_s);
                self.rec.observe(
                    schema::HIST_FLEET_QUEUE_WAIT_S,
                    inf.dispatch_s - m.arrival_s,
                );
            }
        }
        let rep = &mut self.reps[i];
        if any_late {
            if rep.breaker.record_failure(inf.completion_s) {
                rep.stats.breaker_opens += 1;
                self.timeline.push(FleetTimelineEvent {
                    at_s: inf.completion_s,
                    replica: i,
                    kind: TimelineKind::BreakerOpened,
                });
                if enabled {
                    self.rec.add(schema::CTR_FLEET_BREAKER_OPENS, 1);
                }
            }
        } else if rep.breaker.record_success() {
            rep.stats.breaker_closes += 1;
            self.timeline.push(FleetTimelineEvent {
                at_s: inf.completion_s,
                replica: i,
                kind: TimelineKind::BreakerClosed,
            });
            if enabled {
                self.rec.add(schema::CTR_FLEET_BREAKER_CLOSES, 1);
            }
        }
    }

    fn apply_fault(&mut self) {
        let ev = self.fault_events[self.next_fault];
        self.next_fault += 1;
        let enabled = self.rec.enabled();
        match ev.fault {
            ReplicaFault::Crash => {
                if !self.reps[ev.replica].up {
                    return;
                }
                let rep = &mut self.reps[ev.replica];
                rep.up = false;
                rep.stats.crashes += 1;
                self.timeline.push(FleetTimelineEvent {
                    at_s: ev.at_s,
                    replica: ev.replica,
                    kind: TimelineKind::Crash,
                });
                if enabled {
                    self.rec.add(schema::CTR_FLEET_CRASHES, 1);
                }
                // Orphans: the aborted in-flight batch plus the whole
                // backlog. Each must be re-admitted elsewhere or shed
                // explicitly — never silently dropped.
                let mut orphans: Vec<Request> = Vec::new();
                if let Some(inf) = rep.in_flight.take() {
                    orphans.extend(inf.members);
                }
                orphans.extend(rep.queue.drain());
                for m in orphans {
                    let idx = self.ix(m.id);
                    let tr = &mut self.tracks[idx];
                    tr.copies.remove(ev.replica);
                    if tr.done {
                        self.duplicates_discarded += 1;
                        continue;
                    }
                    if tr.copies.count() > 0 {
                        // Another live copy (a hedge) survives; the
                        // request is still in play.
                        continue;
                    }
                    if self.place_copy(idx, ev.at_s).is_some() {
                        self.redirected += 1;
                        self.reps[ev.replica].stats.redirected_out += 1;
                        if enabled {
                            self.rec.add(schema::CTR_FLEET_REDIRECTED, 1);
                            self.rec.add(&self.replica_ctrs[ev.replica].1, 1);
                        }
                    } else {
                        let tr = &mut self.tracks[idx];
                        tr.shed = true;
                        self.shed.push(tr.id);
                        if enabled {
                            self.rec.add(schema::CTR_FLEET_SHED, 1);
                        }
                    }
                }
            }
            ReplicaFault::Recover => {
                let rep = &mut self.reps[ev.replica];
                if rep.up {
                    return;
                }
                rep.up = true;
                rep.free_s = ev.at_s;
                rep.slow_factor = 1.0;
                rep.breaker.reset();
                rep.stats.recoveries += 1;
                self.timeline.push(FleetTimelineEvent {
                    at_s: ev.at_s,
                    replica: ev.replica,
                    kind: TimelineKind::Recover,
                });
                if enabled {
                    self.rec.add(schema::CTR_FLEET_RECOVERIES, 1);
                }
            }
            ReplicaFault::Slowdown { factor } => {
                self.reps[ev.replica].slow_factor = factor;
                self.timeline.push(FleetTimelineEvent {
                    at_s: ev.at_s,
                    replica: ev.replica,
                    kind: TimelineKind::Slowdown,
                });
            }
            ReplicaFault::Restore => {
                self.reps[ev.replica].slow_factor = 1.0;
                self.timeline.push(FleetTimelineEvent {
                    at_s: ev.at_s,
                    replica: ev.replica,
                    kind: TimelineKind::Restore,
                });
            }
        }
    }

    fn hedge(&mut self, track_idx: usize) {
        self.hedge_fifo.pop_front();
        // One hedge per request, whether or not a target exists — the
        // original copy stays live either way.
        self.tracks[track_idx].hedged = true;
        if let Some(chosen) = self.place_copy(track_idx, self.now_s) {
            self.tracks[track_idx].hedge_replica = chosen;
            self.hedges += 1;
            if self.rec.enabled() {
                self.rec.add(schema::CTR_FLEET_HEDGES, 1);
            }
        }
    }

    fn into_report(self) -> FleetReport {
        debug_assert!(
            self.reps.iter().all(|r| r.in_flight.is_none()),
            "advance(∞) drains every batch"
        );
        let horizon_s = self
            .completions
            .iter()
            .map(|c| c.completion_s)
            .fold(0.0, f64::max);
        FleetReport {
            completions: self.completions,
            shed: self.shed,
            replicas: self.reps.into_iter().map(|r| r.stats).collect(),
            timeline: self.timeline,
            requests: self.requests,
            redirected: self.redirected,
            hedges: self.hedges,
            hedge_wins: self.hedge_wins,
            duplicates_discarded: self.duplicates_discarded,
            horizon_s,
        }
    }
}

/// Virtual seconds → virtual nanoseconds (the serving span convention).
fn virt_ns(s: f64) -> u64 {
    (s.max(0.0) * 1e9) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::BreakerConfig;
    use mp_core::PipelineTiming;
    use mp_obs::NULL_RECORDER;

    fn cache(n: usize) -> PredictionCache {
        PredictionCache::new(
            (0..n).map(|i| i % 10).collect(),
            (0..n).map(|i| i % 3 == 0).collect(),
        )
        .unwrap()
    }

    fn fpga_timing() -> PipelineTiming {
        PipelineTiming::new(0.001, 0.01, 4)
    }

    fn two_fpga_fleet(policy: RoutingPolicy) -> FleetSim {
        let specs = vec![
            ReplicaSpec::fpga("fpga0", fpga_timing(), 4, 0.002, 64).unwrap(),
            ReplicaSpec::fpga("fpga1", fpga_timing(), 4, 0.002, 64).unwrap(),
        ];
        FleetSim::new(specs, FleetConfig::new(policy), cache(12)).unwrap()
    }

    fn trace(n: usize, gap_s: f64) -> Vec<Request> {
        (0..n)
            .map(|i| Request::new(i as u64, i % 12, gap_s * i as f64))
            .collect()
    }

    /// served ∪ shed must partition the offered ids exactly.
    fn assert_partition(report: &FleetReport, offered: &[Request]) {
        let mut ids: Vec<u64> = report
            .completions
            .iter()
            .map(|c| c.id)
            .chain(report.shed.iter().copied())
            .collect();
        ids.sort_unstable();
        let mut want: Vec<u64> = offered.iter().map(|r| r.id).collect();
        want.sort_unstable();
        assert_eq!(ids, want, "served ∪ shed must partition the trace");
    }

    #[test]
    fn healthy_fleet_serves_everything_with_cache_predictions() {
        let sim = two_fpga_fleet(RoutingPolicy::JoinShortestQueue);
        let t = trace(24, 0.003);
        let report = sim
            .run(&t, &FleetFaultPlan::none(), &NULL_RECORDER)
            .unwrap();
        assert_partition(&report, &t);
        assert!(
            report.shed.is_empty(),
            "healthy fleet under load sheds nothing"
        );
        assert_eq!(report.requests, 24);
        assert_eq!(report.duplicates_discarded, 0);
        for c in &report.completions {
            assert_eq!(c.prediction, sim.cache.prediction(c.image));
            assert!(c.completion_s > c.arrival_s);
            assert!(c.dispatch_s >= c.arrival_s);
        }
    }

    #[test]
    fn round_robin_spreads_isolated_requests_evenly() {
        let sim = two_fpga_fleet(RoutingPolicy::RoundRobin);
        // Requests far apart: each replica alternates.
        let t = trace(10, 1.0);
        let report = sim
            .run(&t, &FleetFaultPlan::none(), &NULL_RECORDER)
            .unwrap();
        assert_eq!(report.replicas[0].served, 5);
        assert_eq!(report.replicas[1].served, 5);
    }

    #[test]
    fn precision_aware_spills_to_host_only_under_pressure() {
        let specs = vec![
            // A tiny FPGA queue that a burst overflows.
            ReplicaSpec::fpga("fpga0", fpga_timing(), 2, 0.001, 2).unwrap(),
            ReplicaSpec::host_only("host0", 0.01, 4, 0.001, 64).unwrap(),
        ];
        let sim = FleetSim::new(
            specs,
            FleetConfig::new(RoutingPolicy::PrecisionAware),
            cache(12),
        )
        .unwrap();
        // A simultaneous burst: the FPGA tier fills, the rest spills.
        let t: Vec<Request> = (0..8).map(|i| Request::new(i, i as usize, 0.0)).collect();
        let report = sim
            .run(&t, &FleetFaultPlan::none(), &NULL_RECORDER)
            .unwrap();
        assert_partition(&report, &t);
        assert!(report.shed.is_empty());
        assert!(
            report.replicas[1].served >= 4,
            "burst beyond the FPGA queue must spill to the host tier \
             (host served {})",
            report.replicas[1].served
        );
        assert!(report.replicas[0].served >= 1);
    }

    #[test]
    fn crash_redirects_backlog_and_recovery_restores_capacity() {
        let sim = two_fpga_fleet(RoutingPolicy::JoinShortestQueue);
        let t = trace(40, 0.003);
        let plan = FleetFaultPlan::seeded(1)
            .with_crash(0, 0.03)
            .with_recovery(0, 0.08);
        let report = sim.run(&t, &plan, &NULL_RECORDER).unwrap();
        assert_partition(&report, &t);
        assert!(report.shed.is_empty(), "survivor capacity suffices");
        assert_eq!(report.replicas[0].crashes, 1);
        assert_eq!(report.replicas[0].recoveries, 1);
        assert!(report.redirected > 0, "crash orphans were re-routed");
        let kinds: Vec<TimelineKind> = report.timeline.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TimelineKind::Crash));
        assert!(kinds.contains(&TimelineKind::Recover));
        // The recovered replica takes new work again.
        assert!(
            report
                .completions
                .iter()
                .any(|c| c.replica == 0 && c.dispatch_s > 0.08),
            "replica 0 must serve again after recovery"
        );
        for c in &report.completions {
            assert_eq!(c.prediction, sim.cache.prediction(c.image));
        }
    }

    #[test]
    fn crash_with_no_survivors_sheds_explicitly() {
        let specs = vec![ReplicaSpec::fpga("only", fpga_timing(), 4, 0.002, 64).unwrap()];
        let sim = FleetSim::new(
            specs,
            FleetConfig::new(RoutingPolicy::RoundRobin),
            cache(12),
        )
        .unwrap();
        let t = trace(20, 0.003);
        let plan = FleetFaultPlan::seeded(0).with_crash(0, 0.02);
        let report = sim.run(&t, &plan, &NULL_RECORDER).unwrap();
        assert_partition(&report, &t);
        assert!(
            !report.shed.is_empty(),
            "orphans with nowhere to go are shed"
        );
        assert!(report.served() > 0, "pre-crash work completed");
        assert_eq!(report.redirected, 0);
    }

    #[test]
    fn slow_replica_trips_breaker_then_probe_recloses_it() {
        // One replica so the scripted timeline is exact. Nothing is
        // flagged, so a solo batch costs t_bnn (0.001) healthy and 0.1
        // under the 100x slowdown — well past the 0.05 deadline.
        let cfg = FleetConfig::new(RoutingPolicy::JoinShortestQueue)
            .with_breaker(BreakerConfig::try_new(2, 0.1).unwrap())
            .with_deadline_s(0.05);
        let specs = vec![ReplicaSpec::fpga("solo", fpga_timing(), 4, 0.002, 64).unwrap()];
        let flagless = PredictionCache::new(vec![0; 12], vec![false; 12]).unwrap();
        let sim = FleetSim::new(specs, cfg, flagless).unwrap();
        // Arrivals spaced so each rides its own batch: two slow batches
        // trip the breaker (opens at ~0.302, cooldown to ~0.402); the
        // restore at 0.35 lands before the probe at 0.45, which succeeds
        // and closes the breaker; 0.5 is served normally.
        let t = vec![
            Request::new(0, 0, 0.0),
            Request::new(1, 1, 0.2),
            Request::new(2, 2, 0.45),
            Request::new(3, 3, 0.5),
        ];
        let plan = FleetFaultPlan::seeded(0)
            .with_slowdown(0, 0.0, 100.0)
            .with_restore(0, 0.35);
        let report = sim.run(&t, &plan, &NULL_RECORDER).unwrap();
        assert_partition(&report, &t);
        assert!(
            report.shed.is_empty(),
            "no arrival lands inside the open window"
        );
        assert_eq!(
            report.replicas[0].breaker_opens, 1,
            "two consecutive deadline misses must open the breaker"
        );
        assert_eq!(
            report.replicas[0].breaker_closes, 1,
            "the half-open probe after the restore must re-close it"
        );
        let opened_at = report
            .timeline
            .iter()
            .find(|e| e.kind == TimelineKind::BreakerOpened)
            .expect("opened")
            .at_s;
        let closed_at = report
            .timeline
            .iter()
            .find(|e| e.kind == TimelineKind::BreakerClosed)
            .expect("closed")
            .at_s;
        assert!(closed_at > opened_at);
    }

    #[test]
    fn hedge_rescues_requests_stuck_on_a_stalled_replica() {
        let cfg = FleetConfig::new(RoutingPolicy::JoinShortestQueue)
            .with_deadline_s(0.05)
            .with_hedge_after_s(0.05);
        let specs = vec![
            ReplicaSpec::fpga("fpga0", fpga_timing(), 4, 0.002, 64).unwrap(),
            ReplicaSpec::fpga("fpga1", fpga_timing(), 4, 0.002, 64).unwrap(),
        ];
        let sim = FleetSim::new(specs, cfg, cache(12)).unwrap();
        let t = trace(20, 0.003);
        // Replica 0 stalls from the start and never restores.
        let plan = FleetFaultPlan::seeded(0).with_slowdown(0, 0.0, 2000.0);
        let report = sim.run(&t, &plan, &NULL_RECORDER).unwrap();
        assert_partition(&report, &t);
        assert!(report.shed.is_empty());
        assert!(report.hedges > 0, "stuck requests must hedge");
        assert!(report.hedge_wins > 0, "hedge copies must win on the stall");
        assert!(
            report.duplicates_discarded > 0,
            "the stalled copies lose the race and are discarded"
        );
        // Every id still served exactly once.
        let mut ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.served());
    }

    #[test]
    fn full_queues_shed_at_admission() {
        let specs = vec![ReplicaSpec::fpga("tiny", fpga_timing(), 2, 0.01, 2).unwrap()];
        let sim = FleetSim::new(
            specs,
            FleetConfig::new(RoutingPolicy::JoinShortestQueue),
            cache(12),
        )
        .unwrap();
        let t: Vec<Request> = (0..10).map(|i| Request::new(i, i as usize, 0.0)).collect();
        let report = sim
            .run(&t, &FleetFaultPlan::none(), &NULL_RECORDER)
            .unwrap();
        assert_partition(&report, &t);
        assert!(!report.shed.is_empty(), "burst beyond capacity sheds");
    }

    #[test]
    fn replay_is_byte_identical() {
        let cfg = FleetConfig::new(RoutingPolicy::PrecisionAware)
            .with_deadline_s(0.04)
            .with_hedge_after_s(0.04)
            .with_breaker(BreakerConfig::try_new(2, 0.05).unwrap());
        let specs = vec![
            ReplicaSpec::fpga("fpga0", fpga_timing(), 4, 0.002, 32).unwrap(),
            ReplicaSpec::fpga("fpga1", fpga_timing(), 4, 0.002, 32).unwrap(),
            ReplicaSpec::host_only("host0", 0.01, 4, 0.002, 32).unwrap(),
        ];
        let sim = FleetSim::new(specs, cfg, cache(12)).unwrap();
        let t = trace(200, 0.002);
        let plan = FleetFaultPlan::seeded(7)
            .with_random_kills(3, 0.4, 2, 0.05)
            .with_slowdown(1, 0.1, 30.0)
            .with_restore(1, 0.2);
        let a = sim.run(&t, &plan, &NULL_RECORDER).unwrap();
        let b = sim.run(&t, &plan, &NULL_RECORDER).unwrap();
        assert_eq!(a, b, "same inputs must replay byte-identically");
        assert_partition(&a, &t);
    }

    #[test]
    fn invalid_traces_and_plans_are_rejected() {
        let sim = two_fpga_fleet(RoutingPolicy::RoundRobin);
        let unsorted = vec![Request::new(0, 0, 1.0), Request::new(1, 0, 0.5)];
        assert!(matches!(
            sim.run(&unsorted, &FleetFaultPlan::none(), &NULL_RECORDER),
            Err(FleetError::Trace(_))
        ));
        let dup = vec![Request::new(3, 0, 0.0), Request::new(3, 1, 0.1)];
        assert!(matches!(
            sim.run(&dup, &FleetFaultPlan::none(), &NULL_RECORDER),
            Err(FleetError::Trace(_))
        ));
        let oob = vec![Request::new(0, 99, 0.0)];
        assert!(matches!(
            sim.run(&oob, &FleetFaultPlan::none(), &NULL_RECORDER),
            Err(FleetError::Trace(_))
        ));
        let bad_plan = FleetFaultPlan::seeded(0).with_crash(9, 0.1);
        assert!(matches!(
            sim.run(&trace(2, 0.1), &bad_plan, &NULL_RECORDER),
            Err(FleetError::Config(_))
        ));
    }

    #[test]
    fn cache_validation() {
        assert!(PredictionCache::new(vec![], vec![]).is_err());
        assert!(PredictionCache::new(vec![1], vec![true, false]).is_err());
        let c = PredictionCache::new(vec![4, 2], vec![true, false]).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.is_flagged(0));
        assert_eq!(c.prediction(1), 2);
    }
}
