//! Replica descriptions and the per-replica virtual-time circuit
//! breaker.

use serde::Serialize;

use mp_core::{PipelineTiming, RunOptions};

use crate::FleetError;

/// What hardware profile a replica models. Both kinds run the *same
/// functional* multi-precision pipeline — predictions are bit-identical
/// across the fleet — and differ only in how batches are priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReplicaKind {
    /// FPGA-profile replica: the BNN stage runs at accelerator speed
    /// (`t_bnn ≪ t_fp`) — the cheap, high-throughput tier.
    Fpga,
    /// Host-only replica: the BNN stage is emulated at host speed
    /// (`t_bnn = t_fp`) — the expensive spill tier the precision-aware
    /// router uses under load.
    HostOnly,
}

/// Static description of one fleet replica: its service-time profile
/// and its dynamic-batching / admission knobs (mirroring
/// `mp_serve::BatcherConfig`).
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    name: String,
    kind: ReplicaKind,
    timing: PipelineTiming,
    max_batch: usize,
    max_delay_s: f64,
    queue_capacity: usize,
}

impl ReplicaSpec {
    /// Creates a replica spec, validating the batching knobs.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] if `max_batch` or
    /// `queue_capacity` is zero, or `max_delay_s` is negative or
    /// non-finite.
    pub fn try_new(
        name: impl Into<String>,
        kind: ReplicaKind,
        timing: PipelineTiming,
        max_batch: usize,
        max_delay_s: f64,
        queue_capacity: usize,
    ) -> Result<Self, FleetError> {
        if max_batch == 0 {
            return Err(FleetError::Config("max_batch must be positive".into()));
        }
        if queue_capacity == 0 {
            return Err(FleetError::Config("queue_capacity must be positive".into()));
        }
        if !max_delay_s.is_finite() || max_delay_s < 0.0 {
            return Err(FleetError::Config(format!(
                "max_delay_s {max_delay_s} must be finite and non-negative"
            )));
        }
        Ok(Self {
            name: name.into(),
            kind,
            timing,
            max_batch,
            max_delay_s,
            queue_capacity,
        })
    }

    /// An FPGA-profile replica from the pipeline's timing record.
    ///
    /// # Errors
    ///
    /// Same as [`try_new`](Self::try_new).
    pub fn fpga(
        name: impl Into<String>,
        timing: PipelineTiming,
        max_batch: usize,
        max_delay_s: f64,
        queue_capacity: usize,
    ) -> Result<Self, FleetError> {
        Self::try_new(
            name,
            ReplicaKind::Fpga,
            timing,
            max_batch,
            max_delay_s,
            queue_capacity,
        )
    }

    /// A host-only replica: the same functional pipeline with the BNN
    /// stage priced at host speed (`t_bnn = t_fp = t_fp_img_s`).
    ///
    /// # Errors
    ///
    /// Same as [`try_new`](Self::try_new); additionally rejects a
    /// non-positive `t_fp_img_s`.
    pub fn host_only(
        name: impl Into<String>,
        t_fp_img_s: f64,
        max_batch: usize,
        max_delay_s: f64,
        queue_capacity: usize,
    ) -> Result<Self, FleetError> {
        if !t_fp_img_s.is_finite() || t_fp_img_s <= 0.0 {
            return Err(FleetError::Config(format!(
                "t_fp_img_s {t_fp_img_s} must be finite and positive"
            )));
        }
        Self::try_new(
            name,
            ReplicaKind::HostOnly,
            PipelineTiming::new(t_fp_img_s, t_fp_img_s, max_batch),
            max_batch,
            max_delay_s,
            queue_capacity,
        )
    }

    /// Builds a spec from a per-replica [`RunOptions`] — the timing the
    /// options carry becomes the replica's service profile, and its
    /// pipeline chunk size becomes the dynamic-batching bound.
    ///
    /// # Errors
    ///
    /// Same as [`try_new`](Self::try_new).
    pub fn from_options(
        name: impl Into<String>,
        kind: ReplicaKind,
        opts: &RunOptions<'_>,
        max_delay_s: f64,
        queue_capacity: usize,
    ) -> Result<Self, FleetError> {
        let timing = *opts.timing();
        let max_batch = timing.batch_size;
        Self::try_new(name, kind, timing, max_batch, max_delay_s, queue_capacity)
    }

    /// The replica's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The replica's hardware profile.
    pub fn kind(&self) -> ReplicaKind {
        self.kind
    }

    /// The replica's service-time profile.
    pub fn timing(&self) -> &PipelineTiming {
        &self.timing
    }

    /// Largest batch the replica dispatches.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Longest a queued head request waits before a partial batch is
    /// dispatched anyway.
    pub fn max_delay_s(&self) -> f64 {
        self.max_delay_s
    }

    /// Bound of the replica's admission queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

/// Virtual-time circuit-breaker knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BreakerConfig {
    /// Consecutive failures (deadline-missed batches) that open the
    /// breaker.
    pub failure_threshold: u32,
    /// Virtual seconds the breaker stays open before it admits a
    /// half-open probe.
    pub cooldown_s: f64,
}

impl BreakerConfig {
    /// Creates a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] on a zero threshold or a
    /// non-positive/non-finite cooldown.
    pub fn try_new(failure_threshold: u32, cooldown_s: f64) -> Result<Self, FleetError> {
        if failure_threshold == 0 {
            return Err(FleetError::Config(
                "failure_threshold must be positive".into(),
            ));
        }
        if !cooldown_s.is_finite() || cooldown_s <= 0.0 {
            return Err(FleetError::Config(format!(
                "cooldown_s {cooldown_s} must be finite and positive"
            )));
        }
        Ok(Self {
            failure_threshold,
            cooldown_s,
        })
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_s: 0.5,
        }
    }
}

/// Breaker state in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum BreakerState {
    /// Normal admission.
    Closed,
    /// Rejecting new work until the embedded virtual time.
    Open {
        /// Virtual time at which a half-open probe becomes admissible.
        until_s: f64,
    },
    /// One probe is (or may be) in flight; its outcome decides.
    HalfOpen,
}

/// The fleet's per-replica circuit breaker — unlike the per-image
/// count-based [`mp_core::CircuitBreaker`] inside one pipeline, this
/// one runs in *virtual time*: it opens on consecutive batch failures
/// (deadline misses), stays open for a cooldown, then admits a single
/// half-open probe whose outcome closes or re-opens it.
#[derive(Debug, Clone)]
pub struct FleetBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_in_flight: bool,
    opens: usize,
    closes: usize,
}

impl FleetBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_in_flight: false,
            opens: 0,
            closes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker transitioned closed → open. A failed half-open
    /// probe re-opens without counting a fresh open (mirrors
    /// `CircuitBreaker::trips`).
    pub fn opens(&self) -> usize {
        self.opens
    }

    /// Times a successful probe closed an open breaker. A
    /// [`reset`](Self::reset) (replica recovery) does not count.
    pub fn closes(&self) -> usize {
        self.closes
    }

    /// Whether the router may send this replica new work at `now_s`.
    /// Pure — policies may consult every candidate; call
    /// [`on_admitted`](Self::on_admitted) for the replica actually
    /// chosen.
    pub fn would_admit(&self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open { until_s } => now_s >= until_s,
            BreakerState::HalfOpen => !self.probe_in_flight,
        }
    }

    /// Marks an actual admission at `now_s`. An open breaker past its
    /// cooldown transitions to half-open and the admitted request
    /// becomes the probe.
    pub fn on_admitted(&mut self, now_s: f64) {
        match self.state {
            BreakerState::Closed => {}
            BreakerState::Open { until_s } => {
                debug_assert!(now_s >= until_s, "admission while still open");
                self.state = BreakerState::HalfOpen;
                self.probe_in_flight = true;
            }
            BreakerState::HalfOpen => self.probe_in_flight = true,
        }
    }

    /// Records a successful batch (every member within deadline).
    /// Returns `true` if this closed a non-closed breaker.
    pub fn record_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.probe_in_flight = false;
        match self.state {
            BreakerState::Closed => false,
            _ => {
                self.state = BreakerState::Closed;
                self.closes += 1;
                true
            }
        }
    }

    /// Records a failed batch (some member past deadline) finishing at
    /// `now_s`. Returns `true` if this tripped a closed breaker open; a
    /// failed half-open probe re-opens silently, and a failure while
    /// already open extends the cooldown.
    pub fn record_failure(&mut self, now_s: f64) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.probe_in_flight = false;
        let reopen_until = now_s + self.cfg.cooldown_s;
        match self.state {
            BreakerState::Closed => {
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open {
                        until_s: reopen_until,
                    };
                    self.opens += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open {
                    until_s: reopen_until,
                };
                false
            }
            BreakerState::Open { until_s } => {
                self.state = BreakerState::Open {
                    until_s: until_s.max(reopen_until),
                };
                false
            }
        }
    }

    /// Forces the breaker shut with no memory — the replica-recovery
    /// path (a recovered replica starts fresh). Not counted in
    /// [`closes`](Self::closes).
    pub fn reset(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.probe_in_flight = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_s: f64) -> FleetBreaker {
        FleetBreaker::new(BreakerConfig::try_new(threshold, cooldown_s).unwrap())
    }

    #[test]
    fn opens_after_threshold_and_probes_after_cooldown() {
        let mut b = breaker(2, 1.0);
        assert!(b.would_admit(0.0));
        assert!(!b.record_failure(0.1));
        assert!(b.record_failure(0.2), "second failure trips");
        assert_eq!(b.opens(), 1);
        assert_eq!(b.state(), BreakerState::Open { until_s: 1.2 });
        // Cooling down: rejects…
        assert!(!b.would_admit(1.0));
        // …until the cooldown elapses, then exactly one probe.
        assert!(b.would_admit(1.3));
        b.on_admitted(1.3);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.would_admit(1.4), "only one probe in flight");
        assert!(b.record_success());
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
    }

    #[test]
    fn failed_probe_reopens_without_counting_a_fresh_open() {
        let mut b = breaker(1, 0.5);
        assert!(b.record_failure(0.0));
        assert!(b.would_admit(0.6));
        b.on_admitted(0.6);
        assert!(!b.record_failure(0.7), "failed probe is not a new open");
        assert_eq!(b.opens(), 1);
        assert_eq!(b.state(), BreakerState::Open { until_s: 1.2 });
        // Second probe succeeds.
        assert!(b.would_admit(1.2));
        b.on_admitted(1.2);
        assert!(b.record_success());
        assert_eq!(b.closes(), 1);
        // A fresh failure streak counts a second open.
        assert!(b.record_failure(1.5));
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn failure_while_open_extends_the_cooldown() {
        let mut b = breaker(1, 1.0);
        assert!(b.record_failure(0.0));
        assert_eq!(b.state(), BreakerState::Open { until_s: 1.0 });
        // A straggler batch (dispatched before the trip) fails late:
        // the cooldown extends, no new open counted.
        assert!(!b.record_failure(0.8));
        assert_eq!(b.state(), BreakerState::Open { until_s: 1.8 });
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn reset_clears_state_without_counting_a_close() {
        let mut b = breaker(1, 1.0);
        b.record_failure(0.0);
        b.reset();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 0);
        assert!(b.would_admit(0.0));
    }

    #[test]
    fn spec_validation() {
        let timing = PipelineTiming::new(0.001, 0.01, 4);
        assert!(ReplicaSpec::fpga("a", timing, 4, 0.01, 16).is_ok());
        assert!(ReplicaSpec::fpga("a", timing, 0, 0.01, 16).is_err());
        assert!(ReplicaSpec::fpga("a", timing, 4, -0.01, 16).is_err());
        assert!(ReplicaSpec::fpga("a", timing, 4, 0.01, 0).is_err());
        assert!(ReplicaSpec::host_only("h", 0.0, 4, 0.01, 16).is_err());
        let host = ReplicaSpec::host_only("h", 0.02, 4, 0.01, 16).unwrap();
        assert_eq!(host.kind(), ReplicaKind::HostOnly);
        assert_eq!(host.timing().t_bnn_img_s, host.timing().t_fp_img_s);
    }

    #[test]
    fn spec_from_run_options_inherits_timing() {
        let timing = PipelineTiming::new(0.002, 0.03, 8);
        let opts = RunOptions::new(timing);
        let spec = ReplicaSpec::from_options("r", ReplicaKind::Fpga, &opts, 0.01, 32).unwrap();
        assert_eq!(spec.timing(), &timing);
        assert_eq!(spec.max_batch(), 8);
        assert!(BreakerConfig::try_new(0, 1.0).is_err());
        assert!(BreakerConfig::try_new(1, 0.0).is_err());
    }
}
