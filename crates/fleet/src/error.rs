//! Fleet error type.

use std::error::Error;
use std::fmt;

use mp_core::CoreError;

/// Errors from fleet configuration, trace validation, or the underlying
/// pipeline while building a prediction cache.
#[derive(Debug)]
pub enum FleetError {
    /// Invalid fleet, replica, breaker or fault-plan configuration.
    Config(String),
    /// Invalid request trace (unsorted arrivals, duplicate ids,
    /// out-of-range images).
    Trace(String),
    /// The core pipeline failed.
    Core(CoreError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "fleet config error: {msg}"),
            FleetError::Trace(msg) => write!(f, "fleet trace error: {msg}"),
            FleetError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Core(e)
    }
}
