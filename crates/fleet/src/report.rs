//! Fleet run results: per-request completions, per-replica stats, the
//! failure/recovery timeline, and latency percentiles.

use serde::Serialize;

/// One served request: the winning copy's full virtual-time record.
/// Exactly one completion exists per served id, even when copies raced
/// (hedges, crash re-routes) — the loser is deduplicated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetCompletion {
    /// Request id, echoed from the trace.
    pub id: u64,
    /// Image index the request asked for.
    pub image: usize,
    /// The pipeline's prediction for that image (bit-identical to an
    /// unfaulted single-replica run).
    pub prediction: usize,
    /// Virtual arrival time at the fleet front door.
    pub arrival_s: f64,
    /// Virtual dispatch time of the winning batch.
    pub dispatch_s: f64,
    /// Virtual completion time of the winning batch.
    pub completion_s: f64,
    /// Replica that served the winning copy.
    pub replica: usize,
    /// Whether the winning copy was the hedge (not the original).
    pub hedge_won: bool,
}

impl FleetCompletion {
    /// End-to-end virtual latency: arrival to winning completion.
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// Per-replica accounting for one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct ReplicaStats {
    /// Replica display name.
    pub name: String,
    /// Requests this replica served (winning copies).
    pub served: usize,
    /// Batches it dispatched.
    pub batches: usize,
    /// Requests handed off at crash time and re-admitted elsewhere.
    pub redirected_out: usize,
    /// Crash events.
    pub crashes: usize,
    /// Recovery events.
    pub recoveries: usize,
    /// Circuit-breaker open transitions.
    pub breaker_opens: usize,
    /// Circuit-breaker probe-close transitions.
    pub breaker_closes: usize,
    /// Virtual seconds spent serving batches.
    pub busy_s: f64,
}

/// What a timeline entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TimelineKind {
    /// The replica crashed.
    Crash,
    /// The replica recovered.
    Recover,
    /// The replica slowed down.
    Slowdown,
    /// A slowdown was cleared.
    Restore,
    /// The replica's breaker tripped open.
    BreakerOpened,
    /// The replica's breaker closed after a successful probe.
    BreakerClosed,
}

/// One entry of the fleet's failure/recovery timeline, in virtual-time
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetTimelineEvent {
    /// When it happened (virtual seconds).
    pub at_s: f64,
    /// Which replica.
    pub replica: usize,
    /// What happened.
    pub kind: TimelineKind,
}

/// Everything one fleet run produced. `PartialEq` so determinism gates
/// can compare whole replays.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Winning completions, in completion order (ties by replica).
    pub completions: Vec<FleetCompletion>,
    /// Ids shed explicitly — at admission (every healthy queue full) or
    /// at crash time (no healthy replica could take the orphan). Shed ∪
    /// served partitions the offered trace exactly.
    pub shed: Vec<u64>,
    /// Per-replica accounting, indexed like the spec list.
    pub replicas: Vec<ReplicaStats>,
    /// Crash / recovery / breaker transitions, in virtual-time order.
    pub timeline: Vec<FleetTimelineEvent>,
    /// Requests offered to the router.
    pub requests: usize,
    /// Crash-orphaned requests successfully re-admitted elsewhere.
    pub redirected: usize,
    /// Hedge copies issued.
    pub hedges: usize,
    /// Hedged requests whose hedge copy won.
    pub hedge_wins: usize,
    /// Copies of already-served requests discarded at dispatch,
    /// completion, or crash (the deterministic dedup path).
    pub duplicates_discarded: usize,
    /// Virtual time of the last completion (the served horizon).
    pub horizon_s: f64,
}

impl FleetReport {
    /// Requests served (winning completions).
    pub fn served(&self) -> usize {
        self.completions.len()
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        self.shed.len() as f64 / self.requests.max(1) as f64
    }

    /// Served throughput over the completion horizon, requests/s.
    pub fn throughput_rps(&self) -> f64 {
        self.served() as f64 / self.horizon_s.max(f64::MIN_POSITIVE)
    }

    /// Mean end-to-end latency of served requests.
    pub fn mean_latency_s(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let total: f64 = self.completions.iter().map(|c| c.latency_s()).sum();
        Some(total / self.completions.len() as f64)
    }

    /// Nearest-rank latency percentile (`p` in `(0, 100]`) of served
    /// requests, or `None` when nothing was served or `p` is out of
    /// range. Shared implementation:
    /// [`mp_core::stats::nearest_rank_percentile`].
    pub fn percentile_latency_s(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self.completions.iter().map(|c| c.latency_s()).collect();
        mp_core::stats::nearest_rank_percentile(&latencies, p)
    }

    /// Largest end-to-end latency of a served request.
    pub fn max_latency_s(&self) -> Option<f64> {
        self.completions
            .iter()
            .map(|c| c.latency_s())
            .fold(None, |m, l| Some(m.map_or(l, |v: f64| v.max(l))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_latencies(lat: &[f64]) -> FleetReport {
        FleetReport {
            completions: lat
                .iter()
                .enumerate()
                .map(|(i, &l)| FleetCompletion {
                    id: i as u64,
                    image: i,
                    prediction: 0,
                    arrival_s: 0.0,
                    dispatch_s: 0.0,
                    completion_s: l,
                    replica: 0,
                    hedge_won: false,
                })
                .collect(),
            shed: vec![],
            replicas: vec![],
            timeline: vec![],
            requests: lat.len(),
            redirected: 0,
            hedges: 0,
            hedge_wins: 0,
            duplicates_discarded: 0,
            horizon_s: lat.iter().copied().fold(0.0, f64::max),
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let r = report_with_latencies(&[0.4, 0.1, 0.3, 0.2]);
        assert_eq!(r.percentile_latency_s(25.0), Some(0.1));
        assert_eq!(r.percentile_latency_s(50.0), Some(0.2));
        assert_eq!(r.percentile_latency_s(99.0), Some(0.4));
        assert_eq!(r.percentile_latency_s(100.0), Some(0.4));
        assert_eq!(r.percentile_latency_s(0.0), None);
        assert_eq!(r.max_latency_s(), Some(0.4));
        assert_eq!(r.mean_latency_s(), Some(0.25));
        let empty = report_with_latencies(&[]);
        assert_eq!(empty.percentile_latency_s(50.0), None);
        assert_eq!(empty.mean_latency_s(), None);
    }

    #[test]
    fn report_serialises() {
        let r = report_with_latencies(&[0.1, 0.2]);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"completions\""));
        assert!(json.contains("\"horizon_s\""));
    }
}
