//! # mp-fleet
//!
//! Fault-tolerant multi-replica serving over the multi-precision
//! pipeline: a **virtual-time cluster simulator** that puts N pipeline
//! replicas — mixing FPGA-profile and host-only timing — behind a
//! router, and keeps the paper's "always return a prediction" guarantee
//! when whole replicas die.
//!
//! - [`replica`]: replica descriptions ([`ReplicaSpec`], FPGA-profile
//!   vs host-only) and the per-replica **virtual-time circuit breaker**
//!   ([`FleetBreaker`]: closed → open on consecutive failures → a
//!   half-open probe after a cooldown);
//! - [`router`]: pluggable [`RoutingPolicy`] — round-robin,
//!   join-shortest-queue, and precision-aware (cheap BNN replicas
//!   first, spill to host-only replicas under load);
//! - [`sim`]: the discrete-event engine ([`FleetSim`]) — per-replica
//!   bounded admission queues (reusing `mp-serve`), replica crash /
//!   slowdown / recovery from a seeded
//!   [`FleetFaultPlan`](mp_core::FleetFaultPlan), explicit re-enqueue
//!   or shed of orphaned requests, and hedged retries with
//!   deterministic dedup of the losing copy;
//! - [`report`]: per-request completions, per-replica stats, the
//!   crash/breaker timeline, and latency percentiles.
//!
//! Everything is deterministic: the same trace, specs, config and fault
//! plan replay byte-identically, and the functional predictions are
//! bit-identical to a single unfaulted pipeline run (replicas differ in
//! *timing only* — a host-only replica runs the same functional
//! pipeline with its BNN stage priced at host speed).
//!
//! # Example
//!
//! ```
//! use mp_core::{FleetFaultPlan, PipelineTiming};
//! use mp_fleet::{
//!     FleetConfig, FleetSim, PredictionCache, ReplicaSpec, RoutingPolicy,
//! };
//! use mp_serve::Request;
//!
//! # fn main() -> Result<(), mp_fleet::FleetError> {
//! // Functional results from one real pipeline run over a 4-image store.
//! let cache = PredictionCache::new(vec![3, 1, 4, 1], vec![false, true, false, false])?;
//! let timing = PipelineTiming::new(0.001, 0.01, 4);
//! let specs = vec![
//!     ReplicaSpec::fpga("fpga0", timing, 4, 0.005, 64)?,
//!     ReplicaSpec::host_only("host0", 0.01, 4, 0.005, 64)?,
//! ];
//! let sim = FleetSim::new(specs, FleetConfig::new(RoutingPolicy::JoinShortestQueue), cache)?;
//! let trace: Vec<Request> = (0..8).map(|i| Request::new(i, i as usize % 4, 0.002 * i as f64)).collect();
//! let report = sim.run(&trace, &FleetFaultPlan::none(), &mp_obs::NULL_RECORDER)?;
//! assert_eq!(report.served() + report.shed.len(), trace.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod error;

pub mod replica;
pub mod report;
pub mod router;
pub mod sim;

pub use error::FleetError;
pub use replica::{BreakerConfig, BreakerState, FleetBreaker, ReplicaKind, ReplicaSpec};
pub use report::{FleetCompletion, FleetReport, FleetTimelineEvent, ReplicaStats, TimelineKind};
pub use router::RoutingPolicy;
pub use sim::{FleetConfig, FleetSim, PredictionCache};
