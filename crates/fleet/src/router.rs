//! Pluggable health-aware routing policies.

use serde::Serialize;

use crate::replica::ReplicaKind;

/// How the fleet router picks a replica for a new (or re-routed, or
/// hedged) request. Routing only ever considers *healthy* candidates:
/// replicas that are up, whose circuit breaker admits, and whose
/// admission queue has room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RoutingPolicy {
    /// Rotate through the replicas, skipping unhealthy ones.
    RoundRobin,
    /// Pick the replica with the fewest outstanding requests (queued +
    /// in flight); ties go to the lowest index.
    JoinShortestQueue,
    /// Prefer the cheap FPGA/BNN tier (shortest queue among FPGA
    /// replicas); spill to host-only replicas only when *every* FPGA
    /// replica is saturated — full queue, open breaker, or down.
    PrecisionAware,
}

/// One routable replica as the router sees it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    /// Replica index in the fleet.
    pub index: usize,
    /// Hardware tier, for precision-aware routing.
    pub kind: ReplicaKind,
    /// Queued + in-flight request copies on the replica.
    pub outstanding: usize,
}

/// The routing state machine: the policy plus the round-robin cursor.
#[derive(Debug, Clone)]
pub(crate) struct Router {
    policy: RoutingPolicy,
    fleet_size: usize,
    cursor: usize,
}

impl Router {
    pub(crate) fn new(policy: RoutingPolicy, fleet_size: usize) -> Self {
        Self {
            policy,
            fleet_size,
            cursor: 0,
        }
    }

    /// Picks a replica among `candidates` (already filtered to healthy
    /// ones), or `None` when nothing can take the request. Deterministic
    /// for a given candidate set and cursor history.
    pub(crate) fn route(&mut self, candidates: &[Candidate]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            RoutingPolicy::RoundRobin => {
                for offset in 0..self.fleet_size {
                    let i = (self.cursor + offset) % self.fleet_size;
                    if candidates.iter().any(|c| c.index == i) {
                        self.cursor = (i + 1) % self.fleet_size;
                        return Some(i);
                    }
                }
                None
            }
            RoutingPolicy::JoinShortestQueue => shortest(candidates.iter()),
            RoutingPolicy::PrecisionAware => {
                shortest(candidates.iter().filter(|c| c.kind == ReplicaKind::Fpga))
                    .or_else(|| shortest(candidates.iter()))
            }
        }
    }
}

/// Lowest `(outstanding, index)` candidate — the deterministic JSQ rule.
fn shortest<'a>(candidates: impl Iterator<Item = &'a Candidate>) -> Option<usize> {
    candidates
        .min_by_key(|c| (c.outstanding, c.index))
        .map(|c| c.index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, kind: ReplicaKind, outstanding: usize) -> Candidate {
        Candidate {
            index,
            kind,
            outstanding,
        }
    }

    #[test]
    fn round_robin_rotates_and_skips_missing() {
        let mut r = Router::new(RoutingPolicy::RoundRobin, 3);
        let all: Vec<Candidate> = (0..3).map(|i| cand(i, ReplicaKind::Fpga, 0)).collect();
        assert_eq!(r.route(&all), Some(0));
        assert_eq!(r.route(&all), Some(1));
        assert_eq!(r.route(&all), Some(2));
        assert_eq!(r.route(&all), Some(0));
        // Replica 1 unhealthy: the rotation skips it.
        let partial = [cand(0, ReplicaKind::Fpga, 0), cand(2, ReplicaKind::Fpga, 0)];
        assert_eq!(r.route(&partial), Some(2));
        assert_eq!(r.route(&partial), Some(0));
        assert_eq!(r.route(&[]), None);
    }

    #[test]
    fn jsq_picks_fewest_outstanding_lowest_index() {
        let mut r = Router::new(RoutingPolicy::JoinShortestQueue, 3);
        let cands = [
            cand(0, ReplicaKind::Fpga, 5),
            cand(1, ReplicaKind::HostOnly, 2),
            cand(2, ReplicaKind::Fpga, 2),
        ];
        assert_eq!(r.route(&cands), Some(1), "ties break by index");
    }

    #[test]
    fn precision_aware_prefers_fpga_then_spills() {
        let mut r = Router::new(RoutingPolicy::PrecisionAware, 3);
        let mixed = [
            cand(0, ReplicaKind::HostOnly, 0),
            cand(1, ReplicaKind::Fpga, 7),
            cand(2, ReplicaKind::Fpga, 3),
        ];
        // An idle host replica never outbids a busy FPGA one…
        assert_eq!(r.route(&mixed), Some(2));
        // …until no FPGA replica is routable at all.
        let hosts_only = [cand(0, ReplicaKind::HostOnly, 4)];
        assert_eq!(r.route(&hosts_only), Some(0));
    }
}
