//! Golden-diagnostic tests: deliberately broken pipeline
//! configurations, built through the public API, pinned to the stable
//! `MP0xxx` codes they must report. These are the compatibility
//! contract for the diagnostic codes — renumbering a code breaks this
//! suite on purpose.

use mp_bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use mp_core::dmu::Dmu;
use mp_fpga::device::Device;
use mp_fpga::folding::{EngineFolding, Folding, FoldingSearch};
use mp_fpga::memory::MemoryModel;
use mp_host::zoo::{self, ModelId};
use mp_tensor::init::TensorRng;
use mp_verify::{codes, verify, Severity, VerifyTarget};

/// The shipped paper configuration — folding, partitioned memory, DMU —
/// must verify with zero diagnostics of any severity.
#[test]
fn golden_paper_anchor_is_spotless() {
    let topo = FinnTopology::paper();
    let engines = topo.engines();
    let folding = FoldingSearch::new(&engines).balanced(232_558);
    let dmu = Dmu::new(topo.classes());
    let target = VerifyTarget::from_topology("paper-anchor", &topo, Device::zc702())
        .with_folding(folding)
        .with_memory(MemoryModel::partitioned())
        .with_dmu(&dmu);
    let report = verify(&target);
    assert!(
        report.diagnostics.is_empty(),
        "expected a spotless report, got:\n{}",
        report.render_human()
    );
}

/// A freshly folded hardware BNN passes the threshold analysis: the
/// right number of thresholds per stage, all within the static
/// accumulator intervals' representable range.
#[test]
fn golden_folded_hardware_is_clean() {
    let topo = FinnTopology::scaled(8, 8, 8);
    let mut rng = TensorRng::seed_from(7);
    let bnn = BnnClassifier::new(topo.clone(), &mut rng).expect("classifier builds");
    let hw = HardwareBnn::from_classifier(&bnn).expect("hardware folds");
    let target =
        VerifyTarget::from_topology("scaled-hw", &topo, Device::zc702()).with_hardware(&hw);
    let report = verify(&target);
    assert!(
        !report.has_code(codes::THRESHOLD_COUNT),
        "{}",
        report.render_human()
    );
    assert!(!report.has_errors(), "{}", report.render_human());
}

/// Channel-chain mismatch between consecutive engines → MP0101.
#[test]
fn golden_channel_mismatch_is_mp0101() {
    let topo = FinnTopology::paper();
    let mut target = VerifyTarget::from_topology("broken-chain", &topo, Device::zc702());
    target.engines[1].in_channels = 48; // engine 0 produces 64
    let report = verify(&target);
    assert!(
        report.has_code(codes::CHANNEL_CHAIN),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// Spatial-chain mismatch between consecutive engines → MP0102.
#[test]
fn golden_spatial_mismatch_is_mp0102() {
    let topo = FinnTopology::paper();
    let mut target = VerifyTarget::from_topology("broken-spatial", &topo, Device::zc702());
    target.engines[1].in_height += 3;
    let report = verify(&target);
    assert!(
        report.has_code(codes::SPATIAL_CHAIN),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// A fully-parallel folding blows both the BRAM and LUT budgets on the
/// ZC702 → MP0306/MP0307 at error severity when the target requires
/// fit, and only warnings for an exploratory design point.
#[test]
fn golden_over_budget_folding_is_mp0306_mp0307() {
    let topo = FinnTopology::paper();
    let engines = topo.engines();
    let full = || {
        Folding::new(
            engines
                .iter()
                .map(|e| EngineFolding::new(e.weight_rows(), e.weight_cols()))
                .collect(),
        )
    };
    let strict = VerifyTarget::from_topology("full-parallel", &topo, Device::zc702())
        .with_folding(full())
        .with_memory(MemoryModel::naive());
    let report = verify(&strict);
    assert!(
        report.has_code(codes::LUT_BUDGET),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());

    let exploratory = VerifyTarget::from_topology("full-parallel", &topo, Device::zc702())
        .with_folding(full())
        .with_memory(MemoryModel::naive())
        .exploratory();
    let report = verify(&exploratory);
    assert!(!report.has_errors(), "{}", report.render_human());
    assert_eq!(report.max_severity(), Some(Severity::Warning));
}

/// A DMU sized for the wrong class count → MP0105.
#[test]
fn golden_dmu_width_mismatch_is_mp0105() {
    let topo = FinnTopology::paper();
    let dmu = Dmu::new(12); // pipeline produces 10 scores
    let target = VerifyTarget::from_topology("dmu-mismatch", &topo, Device::zc702()).with_dmu(&dmu);
    let report = verify(&target);
    assert!(
        report.has_code(codes::DMU_WIDTH),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// A folding smuggling a zero lane count past the constructor (via the
/// test-only unchecked path) → MP0301.
#[test]
fn golden_zero_folding_is_mp0301() {
    let topo = FinnTopology::paper();
    let engines = topo.engines();
    let mut lanes: Vec<EngineFolding> = engines.iter().map(|_| EngineFolding::new(1, 1)).collect();
    lanes[3] = EngineFolding { p: 0, s: 4 };
    let target = VerifyTarget::from_topology("zero-fold", &topo, Device::zc702())
        .with_folding(Folding::new_unchecked(lanes));
    let report = verify(&target);
    assert!(
        report.has_code(codes::FOLDING_ZERO),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// A NaN parameter in a host layer → MP0206 error; an infinite
/// parameter → MP0207 warning.
#[test]
fn golden_host_nan_taint_is_mp0206() {
    let mut rng = TensorRng::seed_from(11);
    let mut net = zoo::build_fast(ModelId::A, &mut rng).expect("model builds");
    let mut pair = 0usize;
    net.visit_params(&mut |param, _grad| {
        match pair {
            0 => param.as_mut_slice()[0] = f32::NAN,
            1 => param.as_mut_slice()[0] = f32::INFINITY,
            _ => {}
        }
        pair += 1;
    });
    let target = VerifyTarget::host_only("poisoned-host", &net, 10, Device::zc702());
    let report = verify(&target);
    assert!(
        report.has_code(codes::NAN_TAINT),
        "{}",
        report.render_human()
    );
    assert!(
        report.has_code(codes::INF_PARAM),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// A target with no engines and nothing else attached → MP0208; the
/// interval pass used to compute `len().wrapping_sub(1)` on the empty
/// list and silently skip all last-engine special-casing instead.
#[test]
fn golden_empty_target_is_mp0208() {
    let target = VerifyTarget::from_engines("empty", Vec::new(), None, 10, Device::zc702());
    let report = verify(&target);
    assert!(
        report.has_code(codes::EMPTY_TARGET),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// A host-only target (empty engine list, host attached) stays a
/// legitimate configuration: no MP0208.
#[test]
fn golden_host_only_target_is_not_mp0208() {
    let mut rng = TensorRng::seed_from(13);
    let net = zoo::build_fast(ModelId::A, &mut rng).expect("model builds");
    let target = VerifyTarget::host_only("host-only", &net, 10, Device::zc702());
    let report = verify(&target);
    assert!(
        !report.has_code(codes::EMPTY_TARGET),
        "{}",
        report.render_human()
    );
}

/// Reports serialize to JSON with the code strings intact, so
/// `results/lint_report.json` is greppable by code.
#[test]
fn golden_report_serializes_codes() {
    let topo = FinnTopology::paper();
    let mut target = VerifyTarget::from_topology("json", &topo, Device::zc702());
    target.engines[1].in_channels = 48;
    let report = verify(&target);
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(
        json.contains("MP0101"),
        "serialized report lacks the code: {json}"
    );
    assert!(json.contains("\"target\""));
}

/// A declared multi-bit precision over the unmodified 1-bit chain: the
/// inner engines' lanes are too narrow for the activations → MP0401.
#[test]
fn golden_unsynthesized_quantized_chain_is_mp0401() {
    let topo = FinnTopology::paper();
    let n = topo.engines().len();
    let mut target =
        VerifyTarget::from_topology("narrow-lanes", &topo, Device::zu3eg()).exploratory();
    target.precision = Some(mp_int::NetworkPrecision::uniform(n, 4, 4).expect("widths"));
    let report = verify(&target);
    assert!(
        report.has_code(codes::MIXED_CHAIN),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// A quantized accumulator interval that escapes the i32 fast path
/// (huge fan-in × (2^8−1)² levels) → MP0402.
#[test]
fn golden_quantized_i32_overflow_is_mp0402() {
    let topo = FinnTopology::paper();
    let n = topo.engines().len();
    let precision = mp_int::NetworkPrecision::uniform(n, 8, 8).expect("widths");
    let mut target =
        VerifyTarget::from_topology("quant-overflow", &topo, Device::zu3eg()).exploratory();
    target.engines = mp_verify::synthesize_quantized_chain(&target.engines, &precision);
    // fan_in = 9 · 4096 = 36 864; 36 864 · 255² ≈ 2.4e9 — the doubled
    // magnitude escapes i32 (the binary interval, ±fan_in·2^7, does
    // not, so only the quantized proof can catch this).
    target.engines[2].in_channels = 4096;
    target.precision = Some(precision);
    let report = verify(&target);
    assert!(
        report.has_code(codes::QUANT_ACC_OVERFLOW),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// 8-bit weight planes blow the small device's BRAM budget on a strict
/// target → MP0403 at error severity, quoting the far larger
/// bit-plane-scaled demand (the base accounting of the widened chain
/// may overflow too — MP0306 — but MP0403 prices the planes).
#[test]
fn golden_quantized_bram_budget_is_mp0403() {
    let topo = FinnTopology::paper();
    let n = topo.engines().len();
    let precision = mp_int::NetworkPrecision::uniform(n, 8, 8).expect("widths");
    let mut device = Device::zc702();
    device.luts = 100_000_000; // isolate the BRAM axis
    let mut target = VerifyTarget::from_topology("quant-bram", &topo, device);
    target.engines = mp_verify::synthesize_quantized_chain(&target.engines, &precision);
    let folding = FoldingSearch::new(&target.engines).balanced(232_558);
    target.folding = Some(folding);
    target.memory = MemoryModel::partitioned();
    target.precision = Some(precision);
    let report = verify(&target);
    assert!(
        report.has_code(codes::QUANT_BRAM_BUDGET),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// 8-bit datapath lanes blow the LUT budget once BRAM is taken out of
/// the picture → MP0404.
#[test]
fn golden_quantized_lut_budget_is_mp0404() {
    let topo = FinnTopology::paper();
    let n = topo.engines().len();
    let precision = mp_int::NetworkPrecision::uniform(n, 8, 8).expect("widths");
    let mut device = Device::zc702();
    device.bram_18k = 100_000_000; // isolate the LUT axis
    let mut target = VerifyTarget::from_topology("quant-luts", &topo, device);
    target.engines = mp_verify::synthesize_quantized_chain(&target.engines, &precision);
    let folding = FoldingSearch::new(&target.engines).balanced(100_000);
    target.folding = Some(folding);
    target.memory = MemoryModel::partitioned();
    target.precision = Some(precision);
    let report = verify(&target);
    assert!(
        report.has_code(codes::QUANT_LUT_BUDGET),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// Lanes wider than the declared activations (an 8-bit chain declared
/// to run 2-bit) are legal but wasteful → MP0405 at warning severity.
#[test]
fn golden_overwide_lanes_are_mp0405_warning() {
    let topo = FinnTopology::paper();
    let n = topo.engines().len();
    let wide = mp_int::NetworkPrecision::uniform(n, 8, 8).expect("widths");
    let narrow = mp_int::NetworkPrecision::uniform(n, 2, 2).expect("widths");
    let mut target =
        VerifyTarget::from_topology("overwide-lanes", &topo, Device::zu3eg()).exploratory();
    target.engines = mp_verify::synthesize_quantized_chain(&target.engines, &wide);
    target.precision = Some(narrow);
    let report = verify(&target);
    assert!(
        report.has_code(codes::MIXED_OVERWIDE),
        "{}",
        report.render_human()
    );
    assert!(
        !report.has_errors(),
        "over-provisioning is a lint, not an error:\n{}",
        report.render_human()
    );
}

/// The canonical 2-stage DMU cascade, resolved at paper timing, passes
/// the cascade pass with zero diagnostics.
#[test]
fn golden_dmu_cascade_shape_is_spotless() {
    use mp_core::run::Precision;
    use mp_core::{CascadePolicy, PipelineTiming};

    let topo = FinnTopology::paper();
    let timing = PipelineTiming::new(1.0 / 21_900.0, 1.0 / 91.0, 64);
    let shape = CascadePolicy::dmu(0.7).shape(&Precision::OneBit, &timing);
    let target =
        VerifyTarget::from_topology("dmu-cascade", &topo, Device::zc702()).with_cascade(shape);
    let report = verify(&target);
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code.starts_with("MP05")),
        "{}",
        report.render_human()
    );
}

/// Gate on the terminal stage / missing gate on a non-final stage →
/// MP0502; out-of-range gate → MP0503.
#[test]
fn golden_cascade_gate_misplacement_is_mp0502_mp0503() {
    use mp_core::{CascadeShape, StageShape};

    let topo = FinnTopology::paper();
    let broken = CascadeShape {
        stages: vec![
            StageShape {
                label: "1bit".into(),
                gate: None,
                unit_cost_s: 0.002,
            },
            StageShape {
                label: "a4w4-x8".into(),
                gate: Some(1.7),
                unit_cost_s: 0.008,
            },
            StageShape {
                label: "float32".into(),
                gate: Some(0.5),
                unit_cost_s: 0.033,
            },
        ],
    };
    let target =
        VerifyTarget::from_topology("broken-cascade", &topo, Device::zc702()).with_cascade(broken);
    let report = verify(&target);
    assert!(
        report.has_code(codes::CASCADE_GATE_PLACEMENT),
        "{}",
        report.render_human()
    );
    assert!(
        report.has_code(codes::CASCADE_GATE_RANGE),
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

/// Dead downstream stages (gate 0.0) and an inverted cost ordering are
/// warnings — the chain runs, but the configuration is wasteful →
/// MP0504 + MP0506, no errors.
#[test]
fn golden_cascade_dead_stage_and_cost_order_warn() {
    use mp_core::{CascadeShape, StageShape};

    let topo = FinnTopology::paper();
    let wasteful = CascadeShape {
        stages: vec![
            StageShape {
                label: "a4w4-x8".into(),
                gate: Some(0.0),
                unit_cost_s: 0.008,
            },
            StageShape {
                label: "1bit".into(),
                gate: Some(0.5),
                unit_cost_s: 0.002,
            },
            StageShape {
                label: "float32".into(),
                gate: None,
                unit_cost_s: 0.033,
            },
        ],
    };
    let target = VerifyTarget::from_topology("wasteful-cascade", &topo, Device::zc702())
        .with_cascade(wasteful);
    let report = verify(&target);
    assert!(
        report.has_code(codes::CASCADE_UNREACHABLE),
        "{}",
        report.render_human()
    );
    assert!(
        report.has_code(codes::CASCADE_COST_ORDER),
        "{}",
        report.render_human()
    );
    assert!(!report.has_errors(), "{}", report.render_human());
}
