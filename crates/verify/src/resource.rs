//! Pass 3: folding and resource legality.
//!
//! Checks the chosen [`Folding`](mp_fpga::folding::Folding) against the
//! engine chain — zero/degenerate `P`/`S`, out-of-range and non-divisor
//! tiles, and agreement between `mp_fpga::cycle_model::engine_cycles`
//! and an independent transliteration of the paper's eqs. (3)–(4) — and
//! the design's BRAM-18K/LUT demand against the target
//! [`Device`](mp_fpga::device::Device) budget under the configured
//! [`MemoryModel`](mp_fpga::memory::MemoryModel). Bottleneck-imbalance
//! lints flag engines that could meet the same network rate with fewer
//! XNOR lanes (rate-balanced foldings are provably silent).

use mp_bnn::{EngineKind, EngineSpec};
use mp_fpga::cycle_model::{engine_cycles, valid_p, valid_s};
use mp_fpga::datapath::DatapathModel;
use mp_fpga::memory::EngineMemory;

use crate::diag::{codes, Report, Severity};
use crate::{engine_site, VerifyTarget};

const PASS: &str = "resource";

/// Utilisation fraction above which an in-budget design still gets a
/// [`codes::NEAR_BUDGET`] warning.
const NEAR_BUDGET_FRACTION: f64 = 0.90;

/// Equations (3) and (4) of the paper, transliterated independently of
/// `mp_fpga::cycle_model` so a regression in either copy trips
/// [`codes::CYCLE_MODEL`]:
///
/// ```text
/// CC_CONV = ⌈OD/P⌉ · ⌈(K·K·ID)/S⌉ · OH·OW        (3)
/// CC_FC   = ⌈OD/P⌉ · ⌈ID/S⌉                       (4)
/// ```
// Keep the ⌈a/b⌉ spelled out as (a + b - 1) / b: the point of this
// copy is to share no arithmetic idiom with `cycle_model`.
#[allow(clippy::manual_div_ceil)]
fn paper_equation_cycles(spec: &EngineSpec, p: usize, s: usize) -> u64 {
    let od = spec.out_channels as u64;
    let cols = (spec.kernel * spec.kernel * spec.in_channels) as u64;
    let (p, s) = (p as u64, s as u64);
    let tiles = ((od + p - 1) / p) * ((cols + s - 1) / s);
    match spec.kind {
        EngineKind::Conv => tiles * (spec.out_height * spec.out_width) as u64,
        EngineKind::Fc => tiles,
    }
}

/// Fewest XNOR lanes any padding-free `(P, S)` needs to stay at or
/// under `target_cycles`, if reachable.
fn min_lanes_for(spec: &EngineSpec, target_cycles: u64) -> Option<usize> {
    let mut best: Option<usize> = None;
    for &p in &valid_p(spec) {
        for &s in &valid_s(spec) {
            if engine_cycles(spec, p, s) <= target_cycles {
                let lanes = p * s;
                if best.is_none_or(|b| lanes < b) {
                    best = Some(lanes);
                }
                break; // larger S only costs more lanes at this P
            }
        }
    }
    best
}

pub(crate) fn check(target: &VerifyTarget, report: &mut Report) {
    let Some(folding) = &target.folding else {
        return;
    };
    if folding.engines().len() != target.engines.len() {
        report.push(
            codes::FOLDING_COUNT,
            Severity::Error,
            PASS,
            "folding",
            format!(
                "folding has {} engines but the topology has {}",
                folding.engines().len(),
                target.engines.len()
            ),
        );
        return;
    }

    let mut degenerate = false;
    let mut cycles: Vec<u64> = Vec::with_capacity(target.engines.len());
    for (i, (spec, f)) in target.engines.iter().zip(folding.engines()).enumerate() {
        let site = engine_site(i, spec);
        if f.p == 0 || f.s == 0 {
            report.push(
                codes::FOLDING_ZERO,
                Severity::Error,
                PASS,
                site,
                format!(
                    "degenerate folding P={} S={}: zero tiles divide by zero \
                     in the cycle model",
                    f.p, f.s
                ),
            );
            degenerate = true;
            continue;
        }
        if f.p > spec.weight_rows() || f.s > spec.weight_cols() {
            report.push(
                codes::FOLDING_RANGE,
                Severity::Error,
                PASS,
                site.clone(),
                format!(
                    "folding P={} S={} exceeds the {}x{} weight matrix",
                    f.p,
                    f.s,
                    spec.weight_rows(),
                    spec.weight_cols()
                ),
            );
        } else if spec.weight_rows() % f.p != 0 || spec.weight_cols() % f.s != 0 {
            report.push(
                codes::FOLDING_NON_DIVISOR,
                Severity::Warning,
                PASS,
                site.clone(),
                format!(
                    "P={} S={} does not divide the {}x{} weight matrix; the \
                     weight memory is padded",
                    f.p,
                    f.s,
                    spec.weight_rows(),
                    spec.weight_cols()
                ),
            );
        }
        let model = engine_cycles(spec, f.p, f.s);
        let equation = paper_equation_cycles(spec, f.p, f.s);
        if model != equation {
            report.push(
                codes::CYCLE_MODEL,
                Severity::Error,
                PASS,
                site,
                format!(
                    "cycle model gives {model} cycles but eq. (3)/(4) gives \
                     {equation} for P={} S={}",
                    f.p, f.s
                ),
            );
        }
        cycles.push(model);
    }
    if degenerate {
        // Memory allocation divides by P·S; nothing further is sound.
        return;
    }

    // Bottleneck imbalance: an engine that meets the network's
    // initiation interval with fewer lanes wastes area. Rate-balanced
    // foldings pick the cheapest (P, S) per engine for a target at or
    // above the realised bottleneck, so they never trip this.
    let bottleneck = cycles.iter().copied().max().unwrap_or(1);
    for (i, (spec, f)) in target.engines.iter().zip(folding.engines()).enumerate() {
        if let Some(min_lanes) = min_lanes_for(spec, bottleneck) {
            if min_lanes < f.lanes() {
                report.push(
                    codes::BOTTLENECK_IMBALANCE,
                    Severity::Warning,
                    PASS,
                    engine_site(i, spec),
                    format!(
                        "over-provisioned: {} lanes where {min_lanes} already \
                         meet the {bottleneck}-cycle bottleneck",
                        f.lanes()
                    ),
                );
            }
        }
    }

    // Device budgets under the configured memory model.
    let memories: Vec<EngineMemory> = target
        .engines
        .iter()
        .zip(folding.engines())
        .map(|(spec, &f)| target.memory.allocate_engine(spec, f))
        .collect();
    let bram: u64 = memories.iter().map(EngineMemory::bram_18k).sum();
    let memory_luts: u64 = memories.iter().map(EngineMemory::luts).sum();
    let compute_luts = DatapathModel::default().network_luts(&target.engines, folding.engines());
    let luts = compute_luts + memory_luts;

    let over_severity = if target.require_fit {
        Severity::Error
    } else {
        Severity::Warning
    };
    let device = &target.device;
    budget_check(
        report,
        codes::BRAM_BUDGET,
        over_severity,
        "BRAM-18K",
        bram,
        device.bram_18k,
    );
    budget_check(
        report,
        codes::LUT_BUDGET,
        over_severity,
        "LUT",
        luts,
        device.luts,
    );
}

fn budget_check(
    report: &mut Report,
    code: &str,
    over_severity: Severity,
    what: &str,
    used: u64,
    budget: u64,
) {
    if used > budget {
        report.push(
            code,
            over_severity,
            PASS,
            "device",
            format!(
                "{what} demand {used} exceeds the device budget {budget} \
                 ({:.1} %)",
                100.0 * used as f64 / budget as f64
            ),
        );
    } else if used as f64 > NEAR_BUDGET_FRACTION * budget as f64 {
        report.push(
            codes::NEAR_BUDGET,
            Severity::Warning,
            PASS,
            "device",
            format!(
                "{what} demand {used} is within budget {budget} but above \
                 {:.0} % utilisation",
                100.0 * NEAR_BUDGET_FRACTION
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, VerifyTarget};
    use mp_bnn::FinnTopology;
    use mp_fpga::device::Device;
    use mp_fpga::folding::{EngineFolding, Folding, FoldingSearch};
    use mp_fpga::memory::MemoryModel;

    fn anchor_target(partitioned: bool) -> VerifyTarget<'static> {
        let topo = FinnTopology::paper();
        let engines = topo.engines();
        let folding = FoldingSearch::new(&engines).balanced(232_558);
        let memory = if partitioned {
            MemoryModel::partitioned()
        } else {
            MemoryModel::naive()
        };
        VerifyTarget::from_topology("anchor", &topo, Device::zc702())
            .with_folding(folding)
            .with_memory(memory)
    }

    #[test]
    fn anchor_fits_and_is_clean() {
        let report = verify(&anchor_target(true));
        assert!(!report.has_errors(), "{}", report.render_human());
        assert!(!report.has_code(codes::BOTTLENECK_IMBALANCE));
    }

    #[test]
    fn equations_agree_with_cycle_model_across_foldings() {
        let engines = FinnTopology::paper().engines();
        for target in [30_000u64, 232_558, 900_000] {
            let folding = FoldingSearch::new(&engines).balanced(target);
            for (spec, f) in engines.iter().zip(folding.engines()) {
                assert_eq!(
                    engine_cycles(spec, f.p, f.s),
                    paper_equation_cycles(spec, f.p, f.s)
                );
            }
        }
    }

    #[test]
    fn zero_folding_is_mp0301() {
        let mut t = anchor_target(true);
        let mut engines = t.folding.as_ref().unwrap().engines().to_vec();
        engines[2] = EngineFolding { p: 0, s: 4 };
        t.folding = Some(Folding::new_unchecked(engines));
        let report = verify(&t);
        assert!(report.has_code(codes::FOLDING_ZERO));
        assert!(report.has_errors());
    }

    #[test]
    fn folding_count_mismatch_is_mp0304() {
        let mut t = anchor_target(true);
        t.folding = Some(Folding::new(vec![EngineFolding::new(1, 1)]));
        let report = verify(&t);
        assert!(report.has_code(codes::FOLDING_COUNT));
    }

    #[test]
    fn oversized_folding_is_mp0302() {
        let mut t = anchor_target(true);
        let mut engines = t.folding.as_ref().unwrap().engines().to_vec();
        engines[0] = EngineFolding::new(128, 27); // engine 0 has 64 rows
        t.folding = Some(Folding::new(engines));
        let report = verify(&t);
        assert!(report.has_code(codes::FOLDING_RANGE));
    }

    #[test]
    fn non_divisor_folding_is_a_warning() {
        let mut t = anchor_target(true);
        let mut engines = t.folding.as_ref().unwrap().engines().to_vec();
        engines[0] = EngineFolding::new(3, 27); // 3 does not divide 64
        t.folding = Some(Folding::new(engines));
        let report = verify(&t);
        assert!(report.has_code(codes::FOLDING_NON_DIVISOR));
        assert!(!report.has_errors(), "{}", report.render_human());
    }

    #[test]
    fn fully_parallel_design_over_subscribes_zc702() {
        let topo = FinnTopology::paper();
        let engines = topo.engines();
        let full = || {
            Folding::new(
                engines
                    .iter()
                    .map(|e| EngineFolding::new(e.weight_rows(), e.weight_cols()))
                    .collect(),
            )
        };
        let t = VerifyTarget::from_topology("full-parallel", &topo, Device::zc702())
            .with_folding(full());
        let report = verify(&t);
        assert!(report.has_code(codes::LUT_BUDGET));
        assert!(report.has_errors());
        // The same design as an exploratory point only warns.
        let t = VerifyTarget::from_topology("full-parallel", &topo, Device::zc702())
            .with_folding(full())
            .exploratory();
        let report = verify(&t);
        assert!(!report.has_errors(), "{}", report.render_human());
        assert!(report.has_code(codes::LUT_BUDGET));
    }

    #[test]
    fn imbalanced_folding_is_linted() {
        let mut t = anchor_target(true);
        let mut engines = t.folding.as_ref().unwrap().engines().to_vec();
        // Engine 8 (FC 64x64) fully parallel: 4096 lanes for a
        // bottleneck that 1 lane meets (64·64 = 4096 cycles « 232k).
        engines[8] = EngineFolding::new(64, 64);
        t.folding = Some(Folding::new(engines));
        let report = verify(&t);
        assert!(report.has_code(codes::BOTTLENECK_IMBALANCE));
    }
}
