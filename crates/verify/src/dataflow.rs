//! Pass 1: dataflow and shape checking.
//!
//! Walks the engine chain the way the streaming fabric would, deriving
//! each engine's output interface (channels × height × width, after the
//! optional 2×2 OR-pool) and checking the next engine consumes exactly
//! that. Host networks are checked through their own
//! `Network::output_shape` shape algebra; the DMU's input width must
//! equal the BNN class count it scores.

use mp_bnn::{EngineKind, EngineSpec};

use crate::diag::{codes, Report, Severity};
use crate::{engine_site, VerifyTarget};

const PASS: &str = "dataflow";

/// The `(channels, height, width)` interface an engine presents to its
/// successor, including the 2×2 pool halving (floor division, matching
/// `FinnTopology::engines`).
fn output_interface(spec: &EngineSpec) -> (usize, usize, usize) {
    let (mut h, mut w) = (spec.out_height, spec.out_width);
    if spec.pool_after {
        h /= 2;
        w /= 2;
    }
    (spec.out_channels, h, w)
}

pub(crate) fn check(target: &VerifyTarget, report: &mut Report) {
    check_engines(target, report);
    check_dmu(target, report);
    check_host(target, report);
}

fn check_engines(target: &VerifyTarget, report: &mut Report) {
    let engines = &target.engines;
    if engines.is_empty() {
        return;
    }

    if let Some((c, h, w)) = target.image {
        let e0 = &engines[0];
        if (e0.in_channels, e0.in_height, e0.in_width) != (c, h, w) {
            report.push(
                codes::INPUT_MISMATCH,
                Severity::Error,
                PASS,
                engine_site(0, e0),
                format!(
                    "first engine consumes {}x{}x{} but the input image is {c}x{h}x{w}",
                    e0.in_channels, e0.in_height, e0.in_width
                ),
            );
        }
    }

    let mut seen_fc = false;
    for (i, e) in engines.iter().enumerate() {
        let site = engine_site(i, e);

        if e.weight_rows() == 0 || e.weight_cols() == 0 || e.output_pixels() == 0 {
            report.push(
                codes::DEGENERATE_ENGINE,
                Severity::Error,
                PASS,
                site.clone(),
                format!(
                    "degenerate engine: weight matrix {}x{}, {} output pixels",
                    e.weight_rows(),
                    e.weight_cols(),
                    e.output_pixels()
                ),
            );
        }

        match e.kind {
            EngineKind::Conv => {
                if seen_fc {
                    report.push(
                        codes::CHANNEL_CHAIN,
                        Severity::Error,
                        PASS,
                        site.clone(),
                        "conv engine appears after an FC engine; the flattened \
                         feature vector cannot be re-imaged"
                            .to_owned(),
                    );
                }
                // Valid (unpadded) convolution geometry.
                if e.in_height < e.kernel || e.in_width < e.kernel {
                    report.push(
                        codes::SPATIAL_CHAIN,
                        Severity::Error,
                        PASS,
                        site.clone(),
                        format!(
                            "{}x{} input is smaller than the {}x{} kernel",
                            e.in_height, e.in_width, e.kernel, e.kernel
                        ),
                    );
                } else if e.out_height != e.in_height - e.kernel + 1
                    || e.out_width != e.in_width - e.kernel + 1
                {
                    report.push(
                        codes::SPATIAL_CHAIN,
                        Severity::Error,
                        PASS,
                        site.clone(),
                        format!(
                            "output {}x{} is not the valid-convolution result of \
                             {}x{} input with a {}x{} kernel",
                            e.out_height, e.out_width, e.in_height, e.in_width, e.kernel, e.kernel
                        ),
                    );
                }
                if e.pool_after && (e.out_height % 2 != 0 || e.out_width % 2 != 0) {
                    report.push(
                        codes::ODD_POOL,
                        Severity::Warning,
                        PASS,
                        site.clone(),
                        format!(
                            "2x2 pool over odd {}x{} output drops a border row/column",
                            e.out_height, e.out_width
                        ),
                    );
                }
            }
            EngineKind::Fc => {
                seen_fc = true;
                if e.pool_after {
                    report.push(
                        codes::POOL_PLACEMENT,
                        Severity::Error,
                        PASS,
                        site.clone(),
                        "pool_after on an FC engine: pooling needs a spatial feature map"
                            .to_owned(),
                    );
                }
                if e.kernel != 1
                    || e.in_height != 1
                    || e.in_width != 1
                    || e.out_height != 1
                    || e.out_width != 1
                {
                    report.push(
                        codes::SPATIAL_CHAIN,
                        Severity::Error,
                        PASS,
                        site.clone(),
                        "FC engine carries a spatial extent (kernel and all \
                         spatial dims must be 1)"
                            .to_owned(),
                    );
                }
            }
        }

        // Interface to the next engine.
        if let Some(next) = engines.get(i + 1) {
            let (oc, oh, ow) = output_interface(e);
            let next_site = engine_site(i + 1, next);
            match next.kind {
                EngineKind::Conv => {
                    if next.in_channels != oc {
                        report.push(
                            codes::CHANNEL_CHAIN,
                            Severity::Error,
                            PASS,
                            next_site.clone(),
                            format!(
                                "consumes {} channels but engine {i} produces {oc}",
                                next.in_channels
                            ),
                        );
                    }
                    if (next.in_height, next.in_width) != (oh, ow) {
                        report.push(
                            codes::SPATIAL_CHAIN,
                            Severity::Error,
                            PASS,
                            next_site,
                            format!(
                                "consumes {}x{} pixels but engine {i} produces {oh}x{ow}",
                                next.in_height, next.in_width
                            ),
                        );
                    }
                }
                EngineKind::Fc => {
                    let features = oc * oh * ow;
                    if next.in_channels != features {
                        report.push(
                            codes::CHANNEL_CHAIN,
                            Severity::Error,
                            PASS,
                            next_site,
                            format!(
                                "consumes {} features but engine {i} flattens to \
                                 {oc}x{oh}x{ow} = {features}",
                                next.in_channels
                            ),
                        );
                    }
                }
            }
        }
    }

    let last = engines.len() - 1;
    let out = &engines[last];
    if target.classes > out.out_channels {
        report.push(
            codes::CLASS_WIDTH,
            Severity::Error,
            PASS,
            engine_site(last, out),
            format!(
                "{} classes cannot be read from a {}-wide output engine",
                target.classes, out.out_channels
            ),
        );
    }
}

fn check_dmu(target: &VerifyTarget, report: &mut Report) {
    if let Some(dmu) = target.dmu {
        if dmu.classes() != target.classes {
            report.push(
                codes::DMU_WIDTH,
                Severity::Error,
                PASS,
                "dmu",
                format!(
                    "DMU scores {} classes but the BNN produces {}",
                    dmu.classes(),
                    target.classes
                ),
            );
        }
    }
}

fn check_host(target: &VerifyTarget, report: &mut Report) {
    let Some(net) = target.host else {
        return;
    };
    match net.output_shape(net.input_shape()) {
        Err(e) => {
            report.push(
                codes::HOST_SHAPE,
                Severity::Error,
                PASS,
                "host",
                format!("network rejects its own input shape: {e}"),
            );
        }
        Ok(shape) => {
            let features = shape.dim(shape.rank() - 1);
            if features != target.classes {
                report.push(
                    codes::HOST_CLASSES,
                    Severity::Error,
                    PASS,
                    "host",
                    format!(
                        "output is {features}-wide ({shape}) but the pipeline \
                         classifies {} classes",
                        target.classes
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use mp_bnn::FinnTopology;
    use mp_fpga::device::Device;

    fn paper_target() -> VerifyTarget<'static> {
        VerifyTarget::from_topology("t", &FinnTopology::paper(), Device::zc702())
    }

    #[test]
    fn paper_chain_is_clean() {
        let report = verify(&paper_target());
        assert!(!report.has_errors(), "{}", report.render_human());
    }

    #[test]
    fn broken_channel_chain_is_mp0101() {
        let mut t = paper_target();
        t.engines[3].in_channels = 96; // engine 2 produces 128
        let report = verify(&t);
        assert!(report.has_code(codes::CHANNEL_CHAIN));
        assert!(report.has_errors());
    }

    #[test]
    fn broken_spatial_chain_is_mp0102() {
        let mut t = paper_target();
        t.engines[1].in_height = 29; // engine 0 produces 30
        let report = verify(&t);
        assert!(report.has_code(codes::SPATIAL_CHAIN));
    }

    #[test]
    fn pool_on_fc_is_mp0103() {
        let mut t = paper_target();
        t.engines[7].pool_after = true;
        let report = verify(&t);
        assert!(report.has_code(codes::POOL_PLACEMENT));
    }

    #[test]
    fn wrong_image_is_mp0104() {
        let mut t = paper_target();
        t.image = Some((3, 28, 28));
        let report = verify(&t);
        assert!(report.has_code(codes::INPUT_MISMATCH));
    }

    #[test]
    fn too_many_classes_is_mp0108() {
        let mut t = paper_target();
        t.classes = 100; // final engine is 64-wide
        let report = verify(&t);
        assert!(report.has_code(codes::CLASS_WIDTH));
    }

    #[test]
    fn zero_width_engine_is_mp0109() {
        let mut t = paper_target();
        t.engines[2].out_channels = 0;
        let report = verify(&t);
        assert!(report.has_code(codes::DEGENERATE_ENGINE));
    }

    #[test]
    fn odd_pool_is_a_warning_not_error() {
        // 31x31 input: conv output 29x29 is odd, then pooled.
        let topo = FinnTopology::new(3, 31, 31, vec![8, 8], vec![true, false], vec![16], 10);
        let t = VerifyTarget::from_topology("odd", &topo, Device::zc702());
        let report = verify(&t);
        assert!(report.has_code(codes::ODD_POOL));
        assert!(!report.has_errors(), "{}", report.render_human());
    }
}
