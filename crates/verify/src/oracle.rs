//! The feasibility oracle: `verify()` as a fast in-memory API.
//!
//! A design-space search asks the same question millions of times —
//! "is this (folding, precision) candidate legal, and what does it
//! cost?" — against a *fixed* engine chain, device and memory model.
//! Re-running the batch [`verify`](crate::verify) per candidate would
//! re-prove everything that never changes (geometry chaining, base
//! intervals, threshold placement) and re-allocate report strings per
//! call. [`Oracle`] hoists all of that to construction time:
//!
//! 1. **Structure** — the dataflow pass and every other
//!    precision/folding-independent verdict is computed once, by
//!    running the full verifier on the bare chain.
//! 2. **Width tables** — for each engine and each of the 16 supported
//!    `(a_bits, w_bits)` pairs, the quantized/binary accumulator
//!    intervals, i32 fast-path safety, synthesized threshold width and
//!    MPIC cycle factor are precomputed, so the per-candidate
//!    "interval pass" is a table lookup.
//! 3. **Memoised budgets** — BRAM/LUT demand is per-engine and depends
//!    only on `(engine, P, S, a, w, next a)`, so allocations are cached
//!    across candidates; beam searches that mutate one engine at a
//!    time hit the cache for every other engine.
//!
//! [`Oracle::check`] stages the remaining per-candidate work
//! cheapest-first — structural counts, then folding legality and
//! memoised budgets, then the width lookups — and returns at the first
//! blocking error, so infeasible candidates (the vast majority in a
//! search) cost a few comparisons. The verdict is *identical* to the
//! batch verifier's: for any candidate, [`Oracle::check`] returns
//! `Infeasible` iff `verify(&oracle.target(&candidate))` has
//! error-severity diagnostics (pinned by a property test in
//! `tests/props.rs`).
//!
//! Host networks, DMUs and folded hardware attached to the seed target
//! are *not* part of the candidate space and are ignored: the oracle
//! answers for the engine chain alone.

use std::collections::HashMap;

use mp_bnn::EngineSpec;
use mp_fpga::cycle_model::engine_cycles;
use mp_fpga::datapath::DatapathModel;
use mp_fpga::device::Device;
use mp_fpga::folding::{EngineFolding, Folding};
use mp_fpga::memory::MemoryModel;
use mp_int::{CostLut, NetworkPrecision, PrecisionSpec, SUPPORTED_BITS};

use crate::diag::codes;
use crate::interval::{
    accumulator_interval, quant_engine_interval, required_threshold_bits, threshold_word_range,
};
use crate::mixed::{quantized_engine_demand, synthesize_quantized_chain};
use crate::{verify, VerifyTarget};

/// One point of the (folding × precision) design space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Per-engine `(P, S)` choice.
    pub folding: Folding,
    /// Declared per-layer widths; `None` is the plain 1-bit chain.
    pub precision: Option<NetworkPrecision>,
}

/// Which oracle stage rejected a candidate, in evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Precomputed chain verdicts and count checks.
    Structure,
    /// Folding legality and BRAM/LUT budgets.
    Resource,
    /// Interval / width proofs (table lookups).
    Width,
}

/// Why a candidate is infeasible: the first blocking diagnostic,
/// without the report machinery (`Copy`, no allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Stable `MP0xxx` code of the blocking error.
    pub code: &'static str,
    /// The stage that rejected the candidate.
    pub stage: Stage,
    /// Offending engine, when the error is per-engine.
    pub engine: Option<usize>,
}

/// Cost model of a feasible candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateCost {
    /// Slowest engine's eq. (3)/(4) cycle count at 1-bit arithmetic.
    pub bottleneck_cycles: u64,
    /// Slowest engine's cycle count with each layer scaled by its MPIC
    /// cost factor (equals `bottleneck_cycles` for 1-bit candidates).
    pub quant_bottleneck_cycles: f64,
    /// Modeled throughput `clock / quant_bottleneck_cycles` (eq. 5).
    pub modeled_fps: f64,
    /// BRAM-18K demand at the declared precision (weight bit-planes,
    /// threshold ladders, stream buffers).
    pub bram_18k: u64,
    /// LUT demand at the declared precision (datapath + memory LUTs).
    pub luts: u64,
    /// Whether the demand fits the device budget. Feasible-but-unfit
    /// candidates only exist for exploratory oracles (`require_fit`
    /// false); strict oracles reject them with MP0306/0307/0403/0404.
    pub fits: bool,
}

/// The oracle's answer for one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Feasibility {
    /// Legal under every pass; here is what it costs.
    Feasible(CandidateCost),
    /// Rejected; the first blocking error.
    Infeasible(Block),
}

impl Feasibility {
    /// The cost when feasible.
    pub fn cost(&self) -> Option<CandidateCost> {
        match self {
            Feasibility::Feasible(cost) => Some(*cost),
            Feasibility::Infeasible(_) => None,
        }
    }

    /// Whether the candidate survived every check.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }
}

/// Cache and throughput counters of an oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleStats {
    /// Candidates checked.
    pub checks: u64,
    /// Per-engine budget computations served from the memo.
    pub memo_hits: u64,
    /// Distinct `(engine, P, S, a, w, next a)` keys allocated.
    pub memo_entries: usize,
}

/// Width-proof table entry for one `(engine, a_bits, w_bits)`.
#[derive(Debug, Clone, Copy)]
struct WidthEntry {
    /// First width-stage error at these widths, if any.
    blocked: Option<&'static str>,
    /// Threshold word width the synthesized chain uses here.
    synth_threshold_bits: usize,
    /// Per-layer cycle multiplier against the layer's own baseline
    /// (layer 0 against `(a, 1)` pixels×binary, inner against XNOR).
    factor: f64,
}

/// Budget memo value: one engine's demand under one folding at one
/// precision corner, base accounting and quantized accounting
/// (datapath LUTs included, infrastructure excluded).
#[derive(Debug, Clone, Copy)]
struct EngineDemand {
    base_bram: u64,
    base_luts: u64,
    quant_bram: u64,
    quant_luts: u64,
}

/// `(a, w)` corner sentinel for precision-`None` memo keys.
const BASE_CORNER: usize = usize::MAX;

fn bits_idx(bits: usize) -> usize {
    match bits {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => unreachable!("PrecisionSpec widths are validated"),
    }
}

/// Interns a runtime diagnostic code into its static twin.
fn static_code(code: &str) -> &'static str {
    const ALL: &[&str] = &[
        codes::CHANNEL_CHAIN,
        codes::SPATIAL_CHAIN,
        codes::POOL_PLACEMENT,
        codes::INPUT_MISMATCH,
        codes::DMU_WIDTH,
        codes::HOST_SHAPE,
        codes::HOST_CLASSES,
        codes::CLASS_WIDTH,
        codes::DEGENERATE_ENGINE,
        codes::ODD_POOL,
        codes::ACC_OVERFLOW,
        codes::THRESHOLD_NARROW,
        codes::THRESHOLD_SATURATED,
        codes::THRESHOLD_PLACEMENT,
        codes::THRESHOLD_COUNT,
        codes::NAN_TAINT,
        codes::INF_PARAM,
        codes::EMPTY_TARGET,
        codes::INTERVAL_OVERFLOW,
        codes::QUANT_THRESHOLD_NARROW,
        codes::PRECISION_MISMATCH,
        codes::FOLDING_ZERO,
        codes::FOLDING_RANGE,
        codes::FOLDING_NON_DIVISOR,
        codes::FOLDING_COUNT,
        codes::CYCLE_MODEL,
        codes::BRAM_BUDGET,
        codes::LUT_BUDGET,
        codes::BOTTLENECK_IMBALANCE,
        codes::NEAR_BUDGET,
        codes::MIXED_CHAIN,
        codes::QUANT_ACC_OVERFLOW,
        codes::QUANT_BRAM_BUDGET,
        codes::QUANT_LUT_BUDGET,
        codes::MIXED_OVERWIDE,
    ];
    ALL.iter().copied().find(|c| *c == code).unwrap_or("MP0000")
}

/// The feasibility oracle over a fixed engine chain. See the module
/// docs for the staging and caching model.
#[derive(Debug, Clone)]
pub struct Oracle {
    name: String,
    engines: Vec<EngineSpec>,
    image: Option<(usize, usize, usize)>,
    classes: usize,
    device: Device,
    memory: MemoryModel,
    require_fit: bool,
    lut: CostLut,
    /// Precision/folding-independent verdict of the chain.
    structure_block: Option<Block>,
    /// Binary-interval verdict of the *base* chain, applied to
    /// precision-`None` candidates only (a declared precision replaces
    /// the chain's widths via synthesis).
    base_width_block: Option<Block>,
    /// `entries[engine][a_idx * 4 + w_idx]`.
    entries: Vec<[WidthEntry; 16]>,
    memo: HashMap<(usize, usize, usize, usize, usize), EngineDemand>,
    checks: u64,
    memo_hits: u64,
}

impl Oracle {
    /// Builds an oracle for the static parts of `target` (engine chain,
    /// image, classes, device, memory model, `require_fit`). The
    /// target's folding and precision describe one candidate and are
    /// ignored, as are host/DMU/hardware attachments.
    pub fn new(target: &VerifyTarget) -> Self {
        let mut base = VerifyTarget::from_engines(
            target.name.clone(),
            target.engines.clone(),
            target.image,
            target.classes,
            target.device.clone(),
        );
        base.memory = target.memory;
        base.require_fit = target.require_fit;
        let report = verify(&base);
        let mut structure_block = None;
        let mut base_width_block = None;
        for d in &report.diagnostics {
            if d.severity != crate::Severity::Error {
                continue;
            }
            let block = Block {
                code: static_code(&d.code),
                stage: Stage::Structure,
                engine: None,
            };
            let is_width = matches!(d.code.as_str(), "MP0201" | "MP0202" | "MP0209");
            if is_width {
                base_width_block.get_or_insert(Block {
                    stage: Stage::Width,
                    ..block
                });
            } else {
                structure_block.get_or_insert(block);
            }
        }

        let lut = CostLut::mpic();
        let entries = build_width_entries(&target.engines, &lut);
        Self {
            name: target.name.clone(),
            engines: target.engines.clone(),
            image: target.image,
            classes: target.classes,
            device: target.device.clone(),
            memory: target.memory,
            require_fit: target.require_fit,
            lut,
            structure_block,
            base_width_block,
            entries,
            memo: HashMap::new(),
            checks: 0,
            memo_hits: 0,
        }
    }

    /// The chain the oracle answers for.
    pub fn engines(&self) -> &[EngineSpec] {
        &self.engines
    }

    /// The MPIC cost table pricing quantized candidates.
    pub fn cost_lut(&self) -> &CostLut {
        &self.lut
    }

    /// Cache/throughput counters.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            checks: self.checks,
            memo_hits: self.memo_hits,
            memo_entries: self.memo.len(),
        }
    }

    /// Engine `i`'s cycle multiplier at `spec`, against its own
    /// baseline (the term [`CostLut::network_factor`] weights).
    pub fn layer_factor(&self, engine: usize, spec: PrecisionSpec) -> f64 {
        self.entries[engine][bits_idx(spec.a_bits()) * 4 + bits_idx(spec.w_bits())].factor
    }

    /// Reconstructs the [`VerifyTarget`] equivalent to `candidate`:
    /// the synthesized chain (for declared precisions) with the
    /// candidate's folding and precision attached. `verify` on this
    /// target reaches the same error verdict as [`Oracle::check`].
    pub fn target(&self, candidate: &Candidate) -> VerifyTarget<'static> {
        let engines = match &candidate.precision {
            Some(precision) => synthesize_quantized_chain(&self.engines, precision),
            None => self.engines.clone(),
        };
        let mut t = VerifyTarget::from_engines(
            self.name.clone(),
            engines,
            self.image,
            self.classes,
            self.device.clone(),
        );
        t.memory = self.memory;
        t.require_fit = self.require_fit;
        t.folding = Some(candidate.folding.clone());
        t.precision = candidate.precision.clone();
        t
    }

    /// Full check: structure, then resources, then width proofs, with
    /// early exit at the first blocking error.
    pub fn check(&mut self, candidate: &Candidate) -> Feasibility {
        self.checks += 1;
        if let Some(block) = self.check_structure(candidate) {
            return Feasibility::Infeasible(block);
        }
        match self.check_resources(candidate) {
            Err(block) => Feasibility::Infeasible(block),
            Ok(cost) => match self.check_widths(candidate) {
                Some(block) => Feasibility::Infeasible(block),
                None => Feasibility::Feasible(cost),
            },
        }
    }

    /// Cheapest partial check: precomputed chain verdicts and count
    /// consistency. A `Some` here rejects the candidate without
    /// touching budgets or intervals; searches use it to prune whole
    /// branches before pricing anything.
    pub fn check_structure(&self, candidate: &Candidate) -> Option<Block> {
        if let Some(block) = self.structure_block {
            return Some(block);
        }
        if let Some(precision) = &candidate.precision {
            if precision.len() != self.engines.len() {
                return Some(Block {
                    code: codes::PRECISION_MISMATCH,
                    stage: Stage::Structure,
                    engine: None,
                });
            }
        }
        if candidate.folding.engines().len() != self.engines.len() {
            return Some(Block {
                code: codes::FOLDING_COUNT,
                stage: Stage::Structure,
                engine: None,
            });
        }
        None
    }

    /// Folding legality, cycle model and memoised budgets.
    fn check_resources(&mut self, candidate: &Candidate) -> Result<CandidateCost, Block> {
        let foldings = candidate.folding.engines();
        for (i, (spec, f)) in self.engines.iter().zip(foldings).enumerate() {
            if f.p == 0 || f.s == 0 {
                return Err(Block {
                    code: codes::FOLDING_ZERO,
                    stage: Stage::Resource,
                    engine: Some(i),
                });
            }
            if f.p > spec.weight_rows() || f.s > spec.weight_cols() {
                return Err(Block {
                    code: codes::FOLDING_RANGE,
                    stage: Stage::Resource,
                    engine: Some(i),
                });
            }
        }

        let specs = candidate.precision.as_ref().map(|p| p.layers());
        let mut bottleneck = 0u64;
        let mut quant_bottleneck = 0f64;
        let mut base_bram = 0u64;
        let mut base_luts = DatapathModel::default().infra_luts;
        let mut quant_bram = 0u64;
        let mut quant_luts = base_luts;
        for (i, f) in foldings.iter().enumerate() {
            let cycles = engine_cycles(&self.engines[i], f.p, f.s);
            bottleneck = bottleneck.max(cycles);
            let factor = match specs {
                Some(layers) => self.layer_factor(i, layers[i]),
                None => 1.0,
            };
            quant_bottleneck = quant_bottleneck.max(cycles as f64 * factor);
            let demand = self.engine_demand(i, *f, specs);
            base_bram += demand.base_bram;
            base_luts += demand.base_luts;
            quant_bram += demand.quant_bram;
            quant_luts += demand.quant_luts;
        }

        let device_bram = self.device.bram_18k;
        let device_luts = self.device.luts;
        let fits = base_bram <= device_bram
            && base_luts <= device_luts
            && quant_bram <= device_bram
            && quant_luts <= device_luts;
        if self.require_fit && !fits {
            let (code, engine) = if base_bram > device_bram {
                (codes::BRAM_BUDGET, None)
            } else if base_luts > device_luts {
                (codes::LUT_BUDGET, None)
            } else if quant_bram > device_bram {
                (codes::QUANT_BRAM_BUDGET, None)
            } else {
                (codes::QUANT_LUT_BUDGET, None)
            };
            return Err(Block {
                code,
                stage: Stage::Resource,
                engine,
            });
        }

        Ok(CandidateCost {
            bottleneck_cycles: bottleneck,
            quant_bottleneck_cycles: quant_bottleneck,
            modeled_fps: self.device.clock_hz / quant_bottleneck.max(1.0),
            bram_18k: quant_bram,
            luts: quant_luts,
            fits,
        })
    }

    /// Width proofs: table lookups per engine (precision candidates) or
    /// the precomputed base verdict.
    fn check_widths(&self, candidate: &Candidate) -> Option<Block> {
        let Some(precision) = &candidate.precision else {
            return self.base_width_block;
        };
        for (i, spec) in precision.layers().iter().enumerate() {
            let entry = &self.entries[i][bits_idx(spec.a_bits()) * 4 + bits_idx(spec.w_bits())];
            if let Some(code) = entry.blocked {
                return Some(Block {
                    code,
                    stage: Stage::Width,
                    engine: Some(i),
                });
            }
        }
        None
    }

    /// One engine's `(base, quantized)` budget demand under `f`,
    /// served from the memo. Exposed (as the quantized pair) so the
    /// autotuner's bound function prices partial assignments with
    /// exactly the oracle's numbers.
    pub fn quant_engine_demand(
        &mut self,
        engine: usize,
        f: EngineFolding,
        precision: Option<&NetworkPrecision>,
    ) -> (u64, u64) {
        let specs = precision.map(|p| p.layers());
        let d = self.engine_demand(engine, f, specs);
        (d.quant_bram, d.quant_luts)
    }

    fn engine_demand(
        &mut self,
        i: usize,
        f: EngineFolding,
        specs: Option<&[PrecisionSpec]>,
    ) -> EngineDemand {
        let (aw, next_a) = match specs {
            Some(layers) => (
                bits_idx(layers[i].a_bits()) * 4 + bits_idx(layers[i].w_bits()),
                layers.get(i + 1).map_or(1, |n| n.a_bits()),
            ),
            None => (BASE_CORNER, 1),
        };
        let key = (i, f.p, f.s, aw, next_a);
        if let Some(d) = self.memo.get(&key) {
            self.memo_hits += 1;
            return *d;
        }
        let datapath = DatapathModel::default();
        let d = match specs {
            None => {
                let mem = self.memory.allocate_engine(&self.engines[i], f);
                let luts = mem.luts() + datapath.engine_luts(&self.engines[i], f);
                EngineDemand {
                    base_bram: mem.bram_18k(),
                    base_luts: luts,
                    quant_bram: mem.bram_18k(),
                    quant_luts: luts,
                }
            }
            Some(layers) => {
                let spec = layers[i];
                let entry = &self.entries[i][aw];
                let mut synth = self.engines[i].clone();
                synth.input_bits = spec.a_bits();
                synth.threshold_bits = entry.synth_threshold_bits;
                let mem = self.memory.allocate_engine(&synth, f);
                let base_luts = mem.luts() + datapath.engine_luts(&synth, f);
                // The quantized accounting collapses to the base
                // accounting only when this layer is at the 1-bit
                // corner AND its consumer takes binary activations
                // (out_levels == 1) — a 1-bit layer feeding a 4-bit
                // consumer still stores a 15-level ladder.
                let corner = spec.w_bits() == 1 && (i == 0 || spec.a_bits() == 1) && next_a == 1;
                let (quant_bram, quant_luts) = if corner {
                    (mem.bram_18k(), base_luts)
                } else {
                    let out_levels = crate::mixed::ladder_levels(next_a);
                    quantized_engine_demand(&self.memory, &synth, f, spec, out_levels)
                };
                EngineDemand {
                    base_bram: mem.bram_18k(),
                    base_luts,
                    quant_bram,
                    quant_luts,
                }
            }
        };
        self.memo.insert(key, d);
        d
    }
}

/// Precomputes the per-(engine, widths) interval verdicts. This is the
/// whole interval pass, amortised: 16 combinations × the chain length,
/// each a handful of checked multiplies.
fn build_width_entries(engines: &[EngineSpec], lut: &CostLut) -> Vec<[WidthEntry; 16]> {
    let last = engines.len().saturating_sub(1);
    engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            let mut row = [WidthEntry {
                blocked: None,
                synth_threshold_bits: 0,
                factor: 1.0,
            }; 16];
            for (ai, &a) in SUPPORTED_BITS.iter().enumerate() {
                for (wi, &w) in SUPPORTED_BITS.iter().enumerate() {
                    let spec = PrecisionSpec::try_new(a, w).expect("supported widths");
                    row[ai * 4 + wi] = width_entry(engine, i, last, spec, lut);
                }
            }
            row
        })
        .collect()
}

fn width_entry(
    engine: &EngineSpec,
    i: usize,
    last: usize,
    spec: PrecisionSpec,
    lut: &CostLut,
) -> WidthEntry {
    let (a, w) = (spec.a_bits(), spec.w_bits());
    let baseline = if i == 0 {
        lut.macs_per_cycle(a, 1)
    } else {
        lut.macs_per_cycle(1, 1)
    };
    let factor = baseline / lut.macs_per_cycle(a, w);

    let quant = quant_engine_interval(engine, spec, i == 0);
    let synth_threshold_bits = if engine.threshold_bits == 0 {
        0
    } else {
        match quant {
            Ok(acc) => required_threshold_bits(acc)
                .unwrap_or(62)
                .max(engine.threshold_bits),
            Err(_) => engine.threshold_bits,
        }
    };

    let mut blocked = None;
    let mut block = |code: &'static str| {
        if blocked.is_none() {
            blocked = Some(code);
        }
    };

    // Binary interval of the synthesized engine (input_bits = a):
    // MP0209/MP0201/MP0202 as `check_engine_intervals` would emit them.
    match accumulator_interval(engine.weight_cols(), a) {
        Err(_) => block(codes::INTERVAL_OVERFLOW),
        Ok(acc) => {
            if acc.magnitude().saturating_mul(2) > i64::from(i32::MAX) {
                block(codes::ACC_OVERFLOW);
            }
            if synth_threshold_bits > 0 {
                let word = threshold_word_range(synth_threshold_bits);
                if acc.lo < word.lo || acc.hi > word.hi {
                    block(codes::THRESHOLD_NARROW);
                }
            }
        }
    }

    // Quantized interval: MP0209/MP0210/MP0402, with the 1-bit-corner
    // skip the batch passes share (the binary checks above cover it).
    let corner = w == 1 && (i == 0 || a == 1);
    if !corner {
        match quant {
            Err(_) => block(codes::INTERVAL_OVERFLOW),
            Ok(acc) => {
                if i != last && synth_threshold_bits > 0 {
                    let word = threshold_word_range(synth_threshold_bits);
                    if acc.lo < word.lo || acc.hi > word.hi {
                        block(codes::QUANT_THRESHOLD_NARROW);
                    }
                }
                if acc.magnitude().saturating_mul(2) > i64::from(i32::MAX) {
                    block(codes::QUANT_ACC_OVERFLOW);
                }
            }
        }
    }

    WidthEntry {
        blocked,
        synth_threshold_bits,
        factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_bnn::FinnTopology;
    use mp_fpga::folding::FoldingSearch;

    fn paper_oracle(exploratory: bool) -> Oracle {
        let topo = FinnTopology::paper();
        let mut target = VerifyTarget::from_topology("oracle", &topo, Device::zu3eg());
        if exploratory {
            target = target.exploratory();
        }
        Oracle::new(&target)
    }

    fn anchor(engines: &[EngineSpec]) -> Folding {
        FoldingSearch::new(engines).balanced(232_558)
    }

    #[test]
    fn anchor_candidate_is_feasible_and_priced() {
        let mut oracle = paper_oracle(false);
        let folding = anchor(oracle.engines());
        let cand = Candidate {
            folding: folding.clone(),
            precision: None,
        };
        let result = oracle.check(&cand);
        let cost = result.cost().expect("anchor is feasible");
        assert_eq!(
            cost.bottleneck_cycles,
            folding.bottleneck_cycles(oracle.engines())
        );
        assert_eq!(cost.quant_bottleneck_cycles, cost.bottleneck_cycles as f64);
        assert!(cost.fits);
        assert!(cost.modeled_fps > 0.0);
    }

    #[test]
    fn quantized_candidate_costs_more_cycles_and_memory() {
        let mut oracle = paper_oracle(true);
        let n = oracle.engines().len();
        let folding = anchor(oracle.engines());
        let base = oracle
            .check(&Candidate {
                folding: folding.clone(),
                precision: None,
            })
            .cost()
            .unwrap();
        let quant = oracle
            .check(&Candidate {
                folding,
                precision: Some(NetworkPrecision::uniform(n, 4, 4).unwrap()),
            })
            .cost()
            .unwrap();
        assert!(quant.quant_bottleneck_cycles > base.quant_bottleneck_cycles);
        assert!(quant.bram_18k > base.bram_18k);
        assert!(quant.luts > base.luts);
        assert!(quant.modeled_fps < base.modeled_fps);
    }

    #[test]
    fn one_bit_precision_prices_like_none() {
        let mut oracle = paper_oracle(true);
        let n = oracle.engines().len();
        let folding = anchor(oracle.engines());
        let base = oracle
            .check(&Candidate {
                folding: folding.clone(),
                precision: None,
            })
            .cost()
            .unwrap();
        let one = oracle
            .check(&Candidate {
                folding,
                precision: Some(NetworkPrecision::one_bit(n).unwrap()),
            })
            .cost()
            .unwrap();
        assert_eq!(base.bram_18k, one.bram_18k);
        assert_eq!(base.luts, one.luts);
        assert_eq!(base.bottleneck_cycles, one.bottleneck_cycles);
        assert_eq!(one.quant_bottleneck_cycles, one.bottleneck_cycles as f64);
    }

    #[test]
    fn structural_rejections_are_cheap_and_typed() {
        let oracle = paper_oracle(false);
        let cand = Candidate {
            folding: Folding::new(vec![EngineFolding::new(1, 1)]),
            precision: None,
        };
        let block = oracle.check_structure(&cand).expect("count mismatch");
        assert_eq!(block.code, codes::FOLDING_COUNT);
        assert_eq!(block.stage, Stage::Structure);
    }

    #[test]
    fn degenerate_and_oversized_foldings_are_resource_blocks() {
        let mut oracle = paper_oracle(false);
        let mut engines = anchor(oracle.engines()).engines().to_vec();
        engines[2] = EngineFolding { p: 0, s: 4 };
        let zero = oracle.check(&Candidate {
            folding: Folding::new_unchecked(engines.clone()),
            precision: None,
        });
        match zero {
            Feasibility::Infeasible(b) => {
                assert_eq!(b.code, codes::FOLDING_ZERO);
                assert_eq!(b.engine, Some(2));
            }
            Feasibility::Feasible(_) => panic!("zero folding accepted"),
        }
        engines[2] = EngineFolding::new(1 << 20, 4);
        let range = oracle.check(&Candidate {
            folding: Folding::new_unchecked(engines),
            precision: None,
        });
        match range {
            Feasibility::Infeasible(b) => assert_eq!(b.code, codes::FOLDING_RANGE),
            Feasibility::Feasible(_) => panic!("oversized folding accepted"),
        }
    }

    #[test]
    fn memo_hits_accumulate_across_checks() {
        let mut oracle = paper_oracle(true);
        let folding = anchor(oracle.engines());
        let cand = Candidate {
            folding,
            precision: None,
        };
        let _ = oracle.check(&cand);
        let cold = oracle.stats();
        let _ = oracle.check(&cand);
        let warm = oracle.stats();
        assert_eq!(warm.checks, 2);
        assert_eq!(warm.memo_entries, cold.memo_entries);
        assert!(warm.memo_hits >= cold.memo_hits + cold.memo_entries as u64);
    }

    #[test]
    fn verdict_matches_batch_verifier_on_handpicked_corners() {
        let mut oracle = paper_oracle(true);
        let n = oracle.engines().len();
        let engines = oracle.engines().to_vec();
        let sweep = FoldingSearch::new(&engines).sweep(25_000, 1_000_000, 6);
        let precisions: Vec<Option<NetworkPrecision>> = vec![
            None,
            Some(NetworkPrecision::one_bit(n).unwrap()),
            Some(NetworkPrecision::uniform(n, 2, 2).unwrap()),
            Some(NetworkPrecision::uniform(n, 8, 8).unwrap()),
            Some(NetworkPrecision::uniform(3, 4, 4).unwrap()),
        ];
        for folding in sweep {
            for precision in &precisions {
                let cand = Candidate {
                    folding: folding.clone(),
                    precision: precision.clone(),
                };
                let fast = oracle.check(&cand);
                let report = verify(&oracle.target(&cand));
                assert_eq!(
                    fast.is_feasible(),
                    !report.has_errors(),
                    "disagreement at {:?}: {:?} vs\n{}",
                    precision.as_ref().map(|p| p.to_string()),
                    fast,
                    report.render_human()
                );
            }
        }
    }
}
