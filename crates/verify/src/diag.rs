//! The diagnostic model: stable codes, severities, spans, reports.
//!
//! Every check in the verifier emits [`Diagnostic`] records with a
//! stable `MP0xxx` code so downstream tooling (CI gates, golden tests,
//! dashboards) can match on behaviour instead of message text. Codes
//! are grouped by pass:
//!
//! | range | pass |
//! |---|---|
//! | `MP01xx` | dataflow / shape checking |
//! | `MP02xx` | interval abstract interpretation |
//! | `MP03xx` | folding & resource legality |
//! | `MP04xx` | mixed-precision chain & budget legality |
//! | `MP05xx` | cascade decision-policy structure |

use std::fmt;

use serde::Serialize;

/// Stable diagnostic codes. The numeric part never changes meaning;
/// retired codes are not reused.
pub mod codes {
    /// Engine-to-engine channel/feature chaining mismatch.
    pub const CHANNEL_CHAIN: &str = "MP0101";
    /// Engine-to-engine spatial (pixel) chaining mismatch.
    pub const SPATIAL_CHAIN: &str = "MP0102";
    /// Pool flag inconsistency (pool on an FC engine).
    pub const POOL_PLACEMENT: &str = "MP0103";
    /// First engine does not match the declared input image.
    pub const INPUT_MISMATCH: &str = "MP0104";
    /// DMU input width differs from the BNN class count.
    pub const DMU_WIDTH: &str = "MP0105";
    /// Host network rejects its own input shape.
    pub const HOST_SHAPE: &str = "MP0106";
    /// Host network output width differs from the class count.
    pub const HOST_CLASSES: &str = "MP0107";
    /// Class count exceeds the final engine's output width.
    pub const CLASS_WIDTH: &str = "MP0108";
    /// Engine with a zero dimension (no weights or no pixels).
    pub const DEGENERATE_ENGINE: &str = "MP0109";
    /// 2×2 pool over an odd spatial extent drops a border row/column.
    pub const ODD_POOL: &str = "MP0110";

    /// Accumulator interval escapes the i32 fast-path range.
    pub const ACC_OVERFLOW: &str = "MP0201";
    /// Threshold word too narrow for the accumulator interval.
    pub const THRESHOLD_NARROW: &str = "MP0202";
    /// Folded threshold saturates: the channel is constant.
    pub const THRESHOLD_SATURATED: &str = "MP0203";
    /// Threshold present/absent where the engine chain needs the
    /// opposite (missing on an inner engine, unused on the output).
    pub const THRESHOLD_PLACEMENT: &str = "MP0204";
    /// Folded threshold count differs from the engine's output channels.
    pub const THRESHOLD_COUNT: &str = "MP0205";
    /// NaN parameter: poisons every downstream layer (taint).
    pub const NAN_TAINT: &str = "MP0206";
    /// Non-finite (infinite) parameter.
    pub const INF_PARAM: &str = "MP0207";
    /// Target has no engines and nothing else attached: there is
    /// nothing to verify, which is almost always a construction bug.
    pub const EMPTY_TARGET: &str = "MP0208";
    /// A static interval itself overflows i64: the fan-in × level
    /// magnitude is not representable, so no sound width proof exists.
    pub const INTERVAL_OVERFLOW: &str = "MP0209";
    /// Quantized threshold word too narrow for the multi-plane
    /// accumulator interval (the `(2^a−1)·(2^w−1)`-scaled analogue of
    /// [`THRESHOLD_NARROW`]).
    pub const QUANT_THRESHOLD_NARROW: &str = "MP0210";
    /// Precision spec disagrees with the engine list (layer count
    /// mismatch, or a first layer that is not 8-bit-activation).
    pub const PRECISION_MISMATCH: &str = "MP0211";

    /// Zero or degenerate `P`/`S` in a folding.
    pub const FOLDING_ZERO: &str = "MP0301";
    /// `P` exceeds weight rows or `S` exceeds weight columns.
    pub const FOLDING_RANGE: &str = "MP0302";
    /// `P`/`S` does not divide the weight-matrix dimension (padding).
    pub const FOLDING_NON_DIVISOR: &str = "MP0303";
    /// Folding engine count differs from the spec list.
    pub const FOLDING_COUNT: &str = "MP0304";
    /// Cycle model disagrees with eqs. (3)–(4) recomputed independently.
    pub const CYCLE_MODEL: &str = "MP0305";
    /// BRAM-18K demand exceeds the device budget.
    pub const BRAM_BUDGET: &str = "MP0306";
    /// LUT demand exceeds the device budget.
    pub const LUT_BUDGET: &str = "MP0307";
    /// Engine is over-provisioned: a cheaper folding meets the same
    /// bottleneck (rate imbalance wastes lanes).
    pub const BOTTLENECK_IMBALANCE: &str = "MP0308";
    /// Resource use within budget but above 90 % of the device.
    pub const NEAR_BUDGET: &str = "MP0309";

    /// Inner engine's lanes are narrower than the activation width the
    /// declared precision streams through them: the chain cannot carry
    /// the declared `a_bits` across this engine boundary.
    pub const MIXED_CHAIN: &str = "MP0401";
    /// Quantized accumulator interval escapes the i32 fast path: the
    /// `(2^a−1)·(2^w−1)`-scaled analogue of [`ACC_OVERFLOW`], which the
    /// binary-interval check cannot see.
    pub const QUANT_ACC_OVERFLOW: &str = "MP0402";
    /// Quantized BRAM-18K demand (weight bit-planes + threshold
    /// ladders) exceeds the device budget.
    pub const QUANT_BRAM_BUDGET: &str = "MP0403";
    /// Quantized LUT demand (multi-bit lanes + ladder muxing) exceeds
    /// the device budget.
    pub const QUANT_LUT_BUDGET: &str = "MP0404";
    /// Engine lanes are wider than the declared activation width:
    /// legal, but the extra bits are dead area (over-provisioned chain).
    pub const MIXED_OVERWIDE: &str = "MP0405";

    /// Cascade has no stages: nothing classifies anything.
    pub const CASCADE_EMPTY: &str = "MP0501";
    /// Gate present/absent where the chain needs the opposite (missing
    /// on a non-final stage, present on the terminal stage).
    pub const CASCADE_GATE_PLACEMENT: &str = "MP0502";
    /// Gate outside `[0, 1]` or not finite: no confidence can be
    /// compared against it meaningfully.
    pub const CASCADE_GATE_RANGE: &str = "MP0503";
    /// A non-final gate of `0.0` accepts every image (NaN aside), so
    /// every later stage is dead configuration.
    pub const CASCADE_UNREACHABLE: &str = "MP0504";
    /// A stage's modeled unit cost is non-finite or non-positive: the
    /// throughput model (eq. 1 generalised) divides by it.
    pub const CASCADE_COST_INVALID: &str = "MP0505";
    /// Unit cost does not increase down the chain: a later stage is no
    /// more expensive than an earlier one, so escalating to it buys
    /// nothing the earlier stage couldn't (inverted cascade premise).
    pub const CASCADE_COST_ORDER: &str = "MP0506";
    /// A gate of `1.0` on a non-final stage rejects (almost) every
    /// image — sigmoid confidences stay below 1 — so the stage is pure
    /// added latency for the traffic that enters it.
    pub const CASCADE_PASSTHROUGH: &str = "MP0507";
}

/// How bad a diagnostic is.
///
/// Ordered: `Info < Warning < Error`, so `report.max_severity()` is a
/// simple max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// Observation; never fails a gate.
    Info,
    /// Suspicious but executable; lints and near-limits.
    Warning,
    /// The configuration is wrong: running it would panic, overflow,
    /// or not fit the device.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a coded, located, levelled message.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable `MP0xxx` code (see [`codes`]).
    pub code: String,
    /// Severity level.
    pub severity: Severity,
    /// The pass that produced it: `dataflow`, `interval`, `resource`,
    /// `mixed` or `cascade`.
    pub pass: String,
    /// Where in the configuration: `"engine 3 (3x3-conv-128)"`,
    /// `"host layer 2 (conv5x5-32)"`, `"device"`, …
    pub site: String,
    /// Human explanation with the offending numbers inline.
    pub message: String,
}

impl Diagnostic {
    /// Renders as a compiler-style one-liner.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity, self.code, self.site, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// All diagnostics for one verified target.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    /// The target's name (configuration label).
    pub target: String,
    /// Findings in emission order (pass order: dataflow, interval,
    /// resource).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `target`.
    pub fn new(target: impl Into<String>) -> Self {
        Self {
            target: target.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Appends a diagnostic.
    pub fn push(
        &mut self,
        code: &str,
        severity: Severity,
        pass: &str,
        site: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code: code.to_owned(),
            severity,
            pass: pass.to_owned(),
            site: site.into(),
            message: message.into(),
        });
    }

    /// Whether any diagnostic is [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The worst severity present, if any diagnostic exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// All codes present, in emission order (with repeats).
    pub fn codes(&self) -> Vec<&str> {
        self.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    /// Whether `code` was emitted at least once.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Compiler-style multi-line rendering, one line per diagnostic plus
    /// a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}: {}\n", self.target, d.render()));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} info\n",
            self.target,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_counts_and_max() {
        let mut r = Report::new("t");
        assert_eq!(r.max_severity(), None);
        r.push(codes::ODD_POOL, Severity::Warning, "dataflow", "e0", "odd");
        r.push(codes::DMU_WIDTH, Severity::Error, "dataflow", "dmu", "bad");
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(r.has_code(codes::DMU_WIDTH));
        assert!(!r.has_code(codes::ACC_OVERFLOW));
        assert_eq!(r.codes(), vec![codes::ODD_POOL, codes::DMU_WIDTH]);
    }

    #[test]
    fn render_is_compiler_style() {
        let mut r = Report::new("paper");
        r.push(
            codes::BRAM_BUDGET,
            Severity::Error,
            "resource",
            "device",
            "290 > 280 BRAM-18K",
        );
        let line = r.diagnostics[0].render();
        assert!(line.starts_with("error[MP0306] device:"), "{line}");
        assert!(r.render_human().contains("1 error(s)"));
    }

    #[test]
    fn diagnostics_serialize_to_json() {
        let mut r = Report::new("t");
        r.push(codes::CHANNEL_CHAIN, Severity::Error, "dataflow", "e1", "x");
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("MP0101"), "{json}");
        assert!(json.contains("Error"), "{json}");
    }
}
