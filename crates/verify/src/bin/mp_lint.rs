//! `mp-lint`: static design-rule checking over the shipped
//! configurations.
//!
//! Runs all four mp-verify passes over the paper topology (anchor
//! folding, naive and partitioned memory), the scaled topologies, the
//! partially-binarised variant, every folding-sweep design point behind
//! Figs. 3–4, the quantized `{2,4,8}²` precision corners and mixed
//! (non-uniform) per-layer profiles (chains re-synthesised via
//! `synthesize_quantized_chain`, exercising the MP04xx pass), and the
//! host model zoo with a DMU attached — then writes
//! `results/lint_report.json`.
//!
//! Exit codes: `0` clean, `1` any error-severity diagnostic, `2`
//! warnings only (so CI can gate on errors while still surfacing
//! warnings-only runs distinctly).
//!
//! ```text
//! cargo run --release -p mp-verify --bin mp_lint [-- --quiet]
//! ```

use std::path::PathBuf;

use serde::Serialize;

use mp_bnn::FinnTopology;
use mp_core::dmu::Dmu;
use mp_fpga::device::Device;
use mp_fpga::folding::FoldingSearch;
use mp_fpga::memory::MemoryModel;
use mp_host::zoo::{self, ModelId};
use mp_int::{NetworkPrecision, PrecisionSpec};
use mp_tensor::init::TensorRng;
use mp_verify::{synthesize_quantized_chain, verify, Report, Severity, VerifyTarget};

/// Per-target severity counts, for report consumers that only want the
/// summary (dashboards, CI annotations) without the full diagnostics.
#[derive(Debug, Serialize)]
struct TargetSummary {
    target: String,
    errors: usize,
    warnings: usize,
    infos: usize,
}

/// The whole lint run, as written to `results/lint_report.json`.
#[derive(Debug, Serialize)]
struct LintReport {
    tool: String,
    targets: usize,
    errors: usize,
    warnings: usize,
    infos: usize,
    summary: Vec<TargetSummary>,
    reports: Vec<Report>,
}

fn results_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join("lint_report.json")
}

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet" || a == "-q");
    let zc702 = Device::zc702();
    let mut reports: Vec<Report> = Vec::new();

    // 1. The paper topology at its anchor operating point (~430 img/s),
    //    with and without block array partitioning. These are the
    //    shipped designs, so budgets are hard errors.
    let paper = FinnTopology::paper();
    let engines = paper.engines();
    let search = FoldingSearch::new(&engines);
    let anchor = search.balanced(232_558);
    let dmu = Dmu::new(paper.classes());
    for (name, memory) in [
        ("paper-anchor-partitioned", MemoryModel::partitioned()),
        ("paper-anchor-naive", MemoryModel::naive()),
    ] {
        let target = VerifyTarget::from_topology(name, &paper, zc702.clone())
            .with_folding(anchor.clone())
            .with_memory(memory)
            .with_dmu(&dmu);
        reports.push(verify(&target));
    }

    // 2. The reduced-scale training topologies.
    for (name, topo) in [
        ("scaled-16x16-div4", FinnTopology::scaled(16, 16, 4)),
        ("scaled-8x8-div8", FinnTopology::scaled(8, 8, 8)),
    ] {
        let e = topo.engines();
        let folding = FoldingSearch::new(&e).balanced(100_000);
        let target = VerifyTarget::from_topology(name, &topo, zc702.clone())
            .with_folding(folding)
            .with_memory(MemoryModel::partitioned());
        reports.push(verify(&target));
    }

    // 3. The partially-binarised future-work variant: 4-bit inner
    //    activations on the larger device, as an exploratory point.
    {
        let mut target =
            VerifyTarget::from_topology("paper-partially-binarised-4bit", &paper, Device::zu3eg())
                .exploratory();
        target.engines = paper.engines_partially_binarised(4);
        let folding = FoldingSearch::new(&target.engines).balanced(232_558);
        target.folding = Some(folding);
        target.memory = MemoryModel::partitioned();
        reports.push(verify(&target));
    }

    // 4. Every design point of the Figs. 3–4 folding sweep, naive and
    //    partitioned. Sweep points are exploratory by design (the
    //    figures chart utilisation up to and beyond the device), so
    //    over-subscription reports as a warning, not an error.
    for (variant, memory) in [
        ("fig3-naive", MemoryModel::naive()),
        ("fig4-partitioned", MemoryModel::partitioned()),
    ] {
        for (i, folding) in search.sweep(25_000, 1_000_000, 16).into_iter().enumerate() {
            let name = format!("{variant}-point-{i:02}-pe{}", folding.total_pe());
            let target = VerifyTarget::from_topology(name, &paper, zc702.clone())
                .with_folding(folding)
                .with_memory(memory)
                .exploratory();
            reports.push(verify(&target));
        }
    }

    // 5. Quantized configurations: every uniform (a_bits, w_bits)
    //    corner of the {2,4,8}² sweep over the paper topology, the
    //    chain re-synthesised for the declared widths
    //    (`synthesize_quantized_chain` widens both the lanes and the
    //    threshold words, so the mixed pass's MP0401 chain check and
    //    the interval pass's MP0210 word proofs both see the
    //    configuration the precision actually needs); budgets are
    //    exploratory since the wider memories target the larger device.
    for a in [2usize, 4, 8] {
        for w in [2usize, 4, 8] {
            let precision =
                NetworkPrecision::uniform(engines.len(), a, w).expect("supported widths");
            let mut target = VerifyTarget::from_topology(
                format!("paper-quantized-a{a}w{w}"),
                &paper,
                Device::zu3eg(),
            )
            .exploratory();
            target.engines = synthesize_quantized_chain(&target.engines, &precision);
            target.precision = Some(precision);
            let folding = FoldingSearch::new(&target.engines).balanced(232_558);
            target.folding = Some(folding);
            target.memory = MemoryModel::partitioned();
            reports.push(verify(&target));
        }
    }

    // 5b. Mixed (non-uniform) per-layer precisions: the tapered and
    //     activation-only profiles the autotuner explores, exercising
    //     the MP04xx mixed pass (chain compatibility, quantized
    //     accumulator proofs, bit-plane-scaled budgets) end to end.
    {
        let n = engines.len();
        let taper: Vec<PrecisionSpec> = (0..n)
            .map(|i| {
                if i == 0 {
                    PrecisionSpec::try_new(8, 8)
                } else if i <= n / 2 {
                    PrecisionSpec::try_new(4, 4)
                } else {
                    PrecisionSpec::try_new(2, 2)
                }
                .expect("supported widths")
            })
            .collect();
        let act_only: Vec<PrecisionSpec> = (0..n)
            .map(|i| {
                PrecisionSpec::try_new(if i == 0 { 8 } else { 4 }, 1).expect("supported widths")
            })
            .collect();
        for (name, layers) in [
            ("paper-mixed-taper-842", taper),
            ("paper-mixed-a4w1", act_only),
        ] {
            let precision = NetworkPrecision::try_new(layers).expect("valid mixed profile");
            let mut target =
                VerifyTarget::from_topology(name, &paper, Device::zu3eg()).exploratory();
            target.engines = synthesize_quantized_chain(&target.engines, &precision);
            target.precision = Some(precision);
            let folding = FoldingSearch::new(&target.engines).balanced(232_558);
            target.folding = Some(folding);
            target.memory = MemoryModel::partitioned();
            reports.push(verify(&target));
        }
    }

    // 6. The host model zoo (paper-scale builds), checked against the
    //    10-class pipeline interface with the DMU attached.
    let mut rng = TensorRng::seed_from(2018);
    for id in ModelId::ALL {
        match zoo::build_paper(id, &mut rng) {
            Ok(net) => {
                let target = VerifyTarget::host_only(
                    format!("host-model-{}", id.name()),
                    &net,
                    paper.classes(),
                    zc702.clone(),
                )
                .with_dmu(&dmu);
                reports.push(verify(&target));
            }
            Err(e) => {
                let mut r = Report::new(format!("host-model-{}", id.name()));
                r.push(
                    mp_verify::codes::HOST_SHAPE,
                    Severity::Error,
                    "dataflow",
                    "host",
                    format!("model failed to build: {e}"),
                );
                reports.push(r);
            }
        }
    }

    let summary: Vec<TargetSummary> = reports
        .iter()
        .map(|r| TargetSummary {
            target: r.target.clone(),
            errors: r.count(Severity::Error),
            warnings: r.count(Severity::Warning),
            infos: r.count(Severity::Info),
        })
        .collect();
    let errors: usize = summary.iter().map(|s| s.errors).sum();
    let warnings: usize = summary.iter().map(|s| s.warnings).sum();
    let infos: usize = summary.iter().map(|s| s.infos).sum();

    if !quiet {
        for r in &reports {
            if r.diagnostics.is_empty() {
                println!("{}: clean", r.target);
            } else {
                print!("{}", r.render_human());
            }
        }
    }
    println!(
        "mp-lint: {} target(s), {errors} error(s), {warnings} warning(s), {infos} info",
        reports.len()
    );

    let lint = LintReport {
        tool: "mp-lint".to_owned(),
        targets: reports.len(),
        errors,
        warnings,
        infos,
        summary,
        reports,
    };
    let path = results_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match serde_json::to_string_pretty(&lint) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("mp-lint: could not write {}: {e}", path.display());
            } else {
                println!("mp-lint: wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("mp-lint: serialization failed: {e}"),
    }

    if errors > 0 {
        std::process::exit(1);
    }
    if warnings > 0 {
        std::process::exit(2);
    }
}
