//! `mp-lint`: static design-rule checking over the shipped
//! configurations.
//!
//! Runs all three mp-verify passes over the paper topology (anchor
//! folding, naive and partitioned memory), the scaled topologies, the
//! partially-binarised variant, every folding-sweep design point behind
//! Figs. 3–4, the quantized `{2,4,8}²` precision corners (threshold
//! words re-synthesised from the quantized intervals), and the host
//! model zoo with a DMU attached — then writes
//! `results/lint_report.json` and exits non-zero if any error-severity
//! diagnostic was found.
//!
//! ```text
//! cargo run --release -p mp-verify --bin mp_lint [-- --quiet]
//! ```

use std::path::PathBuf;

use serde::Serialize;

use mp_bnn::FinnTopology;
use mp_core::dmu::Dmu;
use mp_fpga::device::Device;
use mp_fpga::folding::FoldingSearch;
use mp_fpga::memory::MemoryModel;
use mp_host::zoo::{self, ModelId};
use mp_tensor::init::TensorRng;
use mp_verify::interval::{quant_engine_interval, required_threshold_bits};
use mp_verify::{verify, Report, Severity, VerifyTarget};

/// The whole lint run, as written to `results/lint_report.json`.
#[derive(Debug, Serialize)]
struct LintReport {
    tool: String,
    targets: usize,
    errors: usize,
    warnings: usize,
    infos: usize,
    reports: Vec<Report>,
}

fn results_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join("lint_report.json")
}

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet" || a == "-q");
    let zc702 = Device::zc702();
    let mut reports: Vec<Report> = Vec::new();

    // 1. The paper topology at its anchor operating point (~430 img/s),
    //    with and without block array partitioning. These are the
    //    shipped designs, so budgets are hard errors.
    let paper = FinnTopology::paper();
    let engines = paper.engines();
    let search = FoldingSearch::new(&engines);
    let anchor = search.balanced(232_558);
    let dmu = Dmu::new(paper.classes());
    for (name, memory) in [
        ("paper-anchor-partitioned", MemoryModel::partitioned()),
        ("paper-anchor-naive", MemoryModel::naive()),
    ] {
        let target = VerifyTarget::from_topology(name, &paper, zc702.clone())
            .with_folding(anchor.clone())
            .with_memory(memory)
            .with_dmu(&dmu);
        reports.push(verify(&target));
    }

    // 2. The reduced-scale training topologies.
    for (name, topo) in [
        ("scaled-16x16-div4", FinnTopology::scaled(16, 16, 4)),
        ("scaled-8x8-div8", FinnTopology::scaled(8, 8, 8)),
    ] {
        let e = topo.engines();
        let folding = FoldingSearch::new(&e).balanced(100_000);
        let target = VerifyTarget::from_topology(name, &topo, zc702.clone())
            .with_folding(folding)
            .with_memory(MemoryModel::partitioned());
        reports.push(verify(&target));
    }

    // 3. The partially-binarised future-work variant: 4-bit inner
    //    activations on the larger device, as an exploratory point.
    {
        let mut target =
            VerifyTarget::from_topology("paper-partially-binarised-4bit", &paper, Device::zu3eg())
                .exploratory();
        target.engines = paper.engines_partially_binarised(4);
        let folding = FoldingSearch::new(&target.engines).balanced(232_558);
        target.folding = Some(folding);
        target.memory = MemoryModel::partitioned();
        reports.push(verify(&target));
    }

    // 4. Every design point of the Figs. 3–4 folding sweep, naive and
    //    partitioned. Sweep points are exploratory by design (the
    //    figures chart utilisation up to and beyond the device), so
    //    over-subscription reports as a warning, not an error.
    for (variant, memory) in [
        ("fig3-naive", MemoryModel::naive()),
        ("fig4-partitioned", MemoryModel::partitioned()),
    ] {
        for (i, folding) in search.sweep(25_000, 1_000_000, 16).into_iter().enumerate() {
            let name = format!("{variant}-point-{i:02}-pe{}", folding.total_pe());
            let target = VerifyTarget::from_topology(name, &paper, zc702.clone())
                .with_folding(folding)
                .with_memory(memory)
                .exploratory();
            reports.push(verify(&target));
        }
    }

    // 5. Quantized configurations: every uniform (a_bits, w_bits)
    //    corner of the {2,4,8}² sweep over the paper topology, with the
    //    threshold words re-synthesised from the quantized accumulator
    //    intervals (`required_threshold_bits`). The declared precision
    //    must match the chain (MP0211) and every widened word must fit
    //    its interval (MP0210); budgets are exploratory since the wider
    //    memories target the larger device.
    for a in [2usize, 4, 8] {
        for w in [2usize, 4, 8] {
            let precision =
                mp_int::NetworkPrecision::uniform(engines.len(), a, w).expect("supported widths");
            let mut target = VerifyTarget::from_topology(
                format!("paper-quantized-a{a}w{w}"),
                &paper,
                Device::zu3eg(),
            )
            .exploratory();
            let last = target.engines.len() - 1;
            for (i, (engine, &spec)) in target
                .engines
                .iter_mut()
                .zip(precision.layers())
                .enumerate()
            {
                if i == last || engine.threshold_bits == 0 {
                    continue;
                }
                let acc = quant_engine_interval(engine, spec, i == 0)
                    .expect("paper fan-ins cannot overflow i64");
                engine.threshold_bits = required_threshold_bits(acc)
                    .expect("paper intervals fit 62-bit words")
                    .max(engine.threshold_bits);
            }
            target.precision = Some(precision);
            reports.push(verify(&target));
        }
    }

    // 6. The host model zoo (paper-scale builds), checked against the
    //    10-class pipeline interface with the DMU attached.
    let mut rng = TensorRng::seed_from(2018);
    for id in ModelId::ALL {
        match zoo::build_paper(id, &mut rng) {
            Ok(net) => {
                let target = VerifyTarget::host_only(
                    format!("host-model-{}", id.name()),
                    &net,
                    paper.classes(),
                    zc702.clone(),
                )
                .with_dmu(&dmu);
                reports.push(verify(&target));
            }
            Err(e) => {
                let mut r = Report::new(format!("host-model-{}", id.name()));
                r.push(
                    mp_verify::codes::HOST_SHAPE,
                    Severity::Error,
                    "dataflow",
                    "host",
                    format!("model failed to build: {e}"),
                );
                reports.push(r);
            }
        }
    }

    let errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
    let warnings: usize = reports.iter().map(|r| r.count(Severity::Warning)).sum();
    let infos: usize = reports.iter().map(|r| r.count(Severity::Info)).sum();

    if !quiet {
        for r in &reports {
            if r.diagnostics.is_empty() {
                println!("{}: clean", r.target);
            } else {
                print!("{}", r.render_human());
            }
        }
    }
    println!(
        "mp-lint: {} target(s), {errors} error(s), {warnings} warning(s), {infos} info",
        reports.len()
    );

    let lint = LintReport {
        tool: "mp-lint".to_owned(),
        targets: reports.len(),
        errors,
        warnings,
        infos,
        reports,
    };
    let path = results_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match serde_json::to_string_pretty(&lint) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("mp-lint: could not write {}: {e}", path.display());
            } else {
                println!("mp-lint: wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("mp-lint: serialization failed: {e}"),
    }

    if errors > 0 {
        std::process::exit(1);
    }
}
