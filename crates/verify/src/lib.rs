//! # mp-verify
//!
//! Static design-rule checking and abstract interpretation for the
//! multi-precision pipeline.
//!
//! The paper's system is a *composition* — a FINN-style BNN dataflow
//! (P×S folding, eqs. 3–5, BRAM/LUT budgets) glued to a float host
//! network through a DMU — and every invariant that composition relies
//! on can be checked **without executing anything**. [`verify`] runs
//! three passes over a [`VerifyTarget`] and returns a
//! [`Report`](diag::Report) of coded diagnostics:
//!
//! 1. **dataflow** ([`dataflow`]) — engine-to-engine channel/pixel
//!    chaining, pool-flag consistency, host-layer shape compatibility
//!    via `Network::output_shape`, DMU input width vs class count.
//! 2. **interval** ([`interval`]) — per-engine popcount/accumulator
//!    bounds (`2·pos_sum − total` ∈ `[-fan_in·2^(b-1), fan_in·2^(b-1)]`),
//!    threshold word-width and saturation analysis, i32 fast-path
//!    overflow proofs, NaN/Inf taint through host float layers.
//! 3. **resource** ([`resource`]) — folding legality (zero/degenerate
//!    P·S, range, divisor), cycle-model consistency against an
//!    independent transliteration of eqs. (3)–(4), BRAM-18K/LUT budgets
//!    vs the [`Device`], and bottleneck-imbalance lints.
//! 4. **mixed** ([`mixed`]) — mixed-precision chain legality: per-layer
//!    `(a_bits, w_bits)` compatibility across engine boundaries,
//!    quantized i32 fast-path proofs, and BRAM/LUT budgets scaled by
//!    weight bit-planes and threshold ladders (MP04xx).
//! 5. **cascade** ([`cascade`]) — decision-policy structure: gate
//!    placement/range on an N-stage [`CascadeShape`](mp_core::CascadeShape),
//!    dead-stage and passthrough lints, unit-cost validity and
//!    monotonicity down the chain (MP05xx).
//!
//! The `mp_lint` binary runs all passes over the shipped configurations
//! and writes `results/lint_report.json`; CI gates on error-severity
//! diagnostics.
//!
//! For search workloads, [`oracle::Oracle`] wraps the same passes as an
//! in-memory feasibility API: precomputed structural verdicts, interval
//! proofs as table lookups, memoised budget accounting, and early exit
//! — `Oracle::check(&Candidate)` reaches the exact error verdict of
//! [`verify`] at a fraction of the cost.
//!
//! # Example
//!
//! ```
//! use mp_bnn::FinnTopology;
//! use mp_fpga::{Device, FoldingSearch, MemoryModel};
//! use mp_verify::{verify, VerifyTarget};
//!
//! let topo = FinnTopology::paper();
//! let engines = topo.engines();
//! let folding = FoldingSearch::new(&engines).balanced(232_558);
//! let target = VerifyTarget::from_topology("paper-anchor", &topo, Device::zc702())
//!     .with_folding(folding)
//!     .with_memory(MemoryModel::partitioned());
//! let report = verify(&target);
//! assert!(!report.has_errors(), "{}", report.render_human());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cascade;
pub mod dataflow;
pub mod diag;
pub mod interval;
pub mod mixed;
pub mod oracle;
pub mod resource;

pub use diag::{codes, Diagnostic, Report, Severity};
pub use interval::Interval;
pub use mixed::synthesize_quantized_chain;
pub use oracle::{Block, Candidate, CandidateCost, Feasibility, Oracle, OracleStats, Stage};

use mp_bnn::{EngineSpec, FinnTopology, HardwareBnn};
use mp_core::dmu::Dmu;
use mp_fpga::device::Device;
use mp_fpga::folding::Folding;
use mp_fpga::memory::MemoryModel;
use mp_nn::Network;

/// One full pipeline configuration to analyse statically.
///
/// Only the engine list and device are mandatory; every other component
/// is optional so partial pipelines (host-only, BNN-only, no folding
/// chosen yet) can be checked, and so golden tests can construct
/// deliberately broken configurations field by field.
#[derive(Debug, Clone)]
pub struct VerifyTarget<'a> {
    /// Configuration label used in report spans.
    pub name: String,
    /// BNN engine chain (may be empty for host-only targets).
    pub engines: Vec<EngineSpec>,
    /// Input image `(channels, height, width)` the first engine must
    /// accept; `None` skips the input check.
    pub image: Option<(usize, usize, usize)>,
    /// Class count read from the final engine / host output / DMU.
    pub classes: usize,
    /// Chosen folding; `None` skips the resource pass.
    pub folding: Option<Folding>,
    /// Memory allocation model for the resource pass.
    pub memory: MemoryModel,
    /// Target device for resource budgets.
    pub device: Device,
    /// When `true`, budget over-subscription is an error; when `false`
    /// (exploratory design points) it is reported as a warning.
    pub require_fit: bool,
    /// Decision-making unit whose input width must match `classes`.
    pub dmu: Option<&'a Dmu>,
    /// Host float network whose shapes and parameters are checked.
    pub host: Option<&'a Network>,
    /// Folded hardware BNN whose thresholds are checked against the
    /// static accumulator intervals.
    pub hw: Option<&'a HardwareBnn>,
    /// Per-layer quantized widths the engine chain is meant to run at;
    /// `None` means the plain 1-bit configuration. When set, the
    /// interval pass re-derives every accumulator bound at the declared
    /// `(a_bits, w_bits)` and proves the threshold words still fit
    /// (MP0210) and the precision matches the chain (MP0211).
    pub precision: Option<mp_int::NetworkPrecision>,
    /// Resolved decision-cascade shape
    /// ([`CascadePolicy::shape`](mp_core::CascadePolicy::shape)); `None`
    /// skips the cascade pass.
    pub cascade: Option<mp_core::CascadeShape>,
}

impl<'a> VerifyTarget<'a> {
    /// A target covering a full [`FinnTopology`] on `device`, with no
    /// folding, naive memory, and strict budget enforcement.
    pub fn from_topology(name: impl Into<String>, topo: &FinnTopology, device: Device) -> Self {
        Self::from_engines(
            name,
            topo.engines(),
            Some((topo.channels(), topo.height(), topo.width())),
            topo.classes(),
            device,
        )
    }

    /// A target over an explicit engine list (golden tests build broken
    /// chains this way).
    pub fn from_engines(
        name: impl Into<String>,
        engines: Vec<EngineSpec>,
        image: Option<(usize, usize, usize)>,
        classes: usize,
        device: Device,
    ) -> Self {
        Self {
            name: name.into(),
            engines,
            image,
            classes,
            folding: None,
            memory: MemoryModel::naive(),
            device,
            require_fit: true,
            dmu: None,
            host: None,
            hw: None,
            precision: None,
            cascade: None,
        }
    }

    /// A host-only target (no BNN engines).
    pub fn host_only(
        name: impl Into<String>,
        host: &'a Network,
        classes: usize,
        device: Device,
    ) -> Self {
        let mut t = Self::from_engines(name, Vec::new(), None, classes, device);
        t.host = Some(host);
        t
    }

    /// Sets the folding to check (enables the resource pass).
    pub fn with_folding(mut self, folding: Folding) -> Self {
        self.folding = Some(folding);
        self
    }

    /// Sets the memory model used for BRAM/LUT accounting.
    pub fn with_memory(mut self, memory: MemoryModel) -> Self {
        self.memory = memory;
        self
    }

    /// Marks the target as an exploratory design point: budget
    /// over-subscription downgrades from error to warning.
    pub fn exploratory(mut self) -> Self {
        self.require_fit = false;
        self
    }

    /// Attaches a DMU to cross-check against `classes`.
    pub fn with_dmu(mut self, dmu: &'a Dmu) -> Self {
        self.dmu = Some(dmu);
        self
    }

    /// Attaches a host network for shape and taint checking.
    pub fn with_host(mut self, host: &'a Network) -> Self {
        self.host = Some(host);
        self
    }

    /// Attaches a folded hardware BNN for threshold analysis.
    pub fn with_hardware(mut self, hw: &'a HardwareBnn) -> Self {
        self.hw = Some(hw);
        self
    }

    /// Declares the per-layer quantized widths the chain runs at,
    /// enabling the MP0210/MP0211 quantized-interval checks.
    pub fn with_precision(mut self, precision: mp_int::NetworkPrecision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Attaches a resolved cascade shape, enabling the MP05xx
    /// decision-policy checks.
    pub fn with_cascade(mut self, cascade: mp_core::CascadeShape) -> Self {
        self.cascade = Some(cascade);
        self
    }
}

/// Runs all five passes over `target` and returns the report.
pub fn verify(target: &VerifyTarget) -> Report {
    let mut report = Report::new(target.name.clone());
    dataflow::check(target, &mut report);
    interval::check(target, &mut report);
    resource::check(target, &mut report);
    mixed::check(target, &mut report);
    cascade::check(target, &mut report);
    report
}

/// Formats an engine span: `"engine 3 (3x3-conv-128)"`.
pub(crate) fn engine_site(index: usize, spec: &EngineSpec) -> String {
    format!("engine {index} ({})", spec.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_fpga::folding::FoldingSearch;

    #[test]
    fn paper_anchor_is_clean() {
        let topo = FinnTopology::paper();
        let engines = topo.engines();
        let folding = FoldingSearch::new(&engines).balanced(232_558);
        let target = VerifyTarget::from_topology("paper", &topo, Device::zc702())
            .with_folding(folding)
            .with_memory(MemoryModel::partitioned());
        let report = verify(&target);
        assert!(!report.has_errors(), "{}", report.render_human());
    }

    #[test]
    fn scaled_topologies_are_clean() {
        for (name, topo) in [
            ("scaled-16", FinnTopology::scaled(16, 16, 4)),
            ("scaled-8", FinnTopology::scaled(8, 8, 8)),
        ] {
            let engines = topo.engines();
            let folding = FoldingSearch::new(&engines).balanced(100_000);
            let target = VerifyTarget::from_topology(name, &topo, Device::zc702())
                .with_folding(folding)
                .with_memory(MemoryModel::partitioned());
            let report = verify(&target);
            assert!(!report.has_errors(), "{}", report.render_human());
        }
    }
}
