//! Pass 4: mixed-precision chain and budget legality (MP04xx).
//!
//! The MP02xx quantized checks (MP0209–MP0211) prove *per-engine*
//! accumulator and threshold widths at the declared
//! [`NetworkPrecision`]. This pass proves the properties that only
//! exist *between* engines and *under a folding* once the precision is
//! non-uniform:
//!
//! - **chain compatibility** (MP0401/MP0405): engine `i` consumes the
//!   activations engine `i−1` produces, so its lanes must be at least
//!   `a_bits[i]` wide. Narrower lanes cannot stream the declared
//!   activations at all (error); wider lanes are dead area (warning).
//! - **i32 fast-path proof** (MP0402): the quantized accumulator is
//!   bounded by `fan_in·(2^a−1)·(2^w−1)`, which can escape the i32
//!   fast path even when the binary bound `fan_in·2^(b−1)` does not.
//! - **quantized budgets** (MP0403/MP0404): a `w`-bit engine stores
//!   `w` bit-planes of its weight matrix, and re-quantising to `a'`
//!   output levels needs a ladder of `2^{a'}−1` thresholds per channel,
//!   so BRAM/LUT demand scales with the precision, not just the
//!   folding. Budgets follow the target's `require_fit` flag like the
//!   base MP0306/MP0307 checks.
//!
//! [`synthesize_quantized_chain`] is the constructive counterpart: it
//! widens a 1-bit engine chain's lane and threshold words to the
//! declared precision so a quantized configuration can be *made* legal
//! rather than merely rejected. `mp_lint` and the `mp-autotune` search
//! both build their quantized candidates through it.

use mp_bnn::{EngineKind, EngineSpec};
use mp_fpga::datapath::DatapathModel;
use mp_fpga::folding::EngineFolding;
use mp_fpga::memory::{allocate_array, best_partition, ArrayAlloc, EngineMemory, MemoryModel};
use mp_int::{NetworkPrecision, PrecisionSpec};

use crate::diag::{codes, Report, Severity};
use crate::interval::{quant_engine_interval, required_threshold_bits};
use crate::{engine_site, VerifyTarget};

const PASS: &str = "mixed";

/// Threshold-ladder length for a consumer at `a_bits`: re-quantising an
/// accumulator to `2^a` levels takes `2^a − 1` thresholds per output
/// channel (one at `a = 1`, the plain binarisation).
pub fn ladder_levels(a_bits: usize) -> u64 {
    (1u64 << a_bits.clamp(1, 32)) - 1
}

/// Whether `precision` is the pure 1-bit corner (binary weights
/// everywhere, binary inner activations). At the corner the quantized
/// accounting collapses to the base 1-bit accounting, so the MP04xx
/// budget checks defer to MP0306/MP0307 instead of double-reporting.
pub fn is_one_bit_corner(precision: &NetworkPrecision) -> bool {
    precision
        .layers()
        .iter()
        .enumerate()
        .all(|(i, spec)| spec.w_bits() == 1 && (i == 0 || spec.a_bits() == 1))
}

/// Widens a (typically 1-bit) engine chain to carry `precision`: every
/// engine's lanes grow to the declared `a_bits` and every threshold
/// word to the width the *quantized* accumulator interval requires
/// (never narrower than it already was). The result is the chain a
/// legal quantized configuration actually ships, and the chain
/// [`Oracle`](crate::oracle::Oracle) prices.
///
/// Engines whose interval has no representable width keep their word
/// and fail MP0210 downstream; a precision whose layer count does not
/// match returns the chain unchanged and fails MP0211 downstream —
/// this function never hides an error, it only removes the
/// representable ones.
pub fn synthesize_quantized_chain(
    engines: &[EngineSpec],
    precision: &NetworkPrecision,
) -> Vec<EngineSpec> {
    let mut out = engines.to_vec();
    if precision.len() != engines.len() {
        return out;
    }
    for (i, (engine, &spec)) in out.iter_mut().zip(precision.layers()).enumerate() {
        engine.input_bits = spec.a_bits();
        if engine.threshold_bits > 0 {
            if let Ok(acc) = quant_engine_interval(engine, spec, i == 0) {
                // No representable width (None) clamps to the widest
                // supported word; MP0210 still fires on it.
                let required = required_threshold_bits(acc).unwrap_or(62);
                engine.threshold_bits = required.max(engine.threshold_bits);
            }
        }
    }
    out
}

/// One engine's memory under `folding` at quantized widths: `w_bits`
/// bit-planes of the weight matrix packed into the `P` weight files,
/// a threshold ladder of `out_levels` words per output channel, and
/// stream buffers at the declared activation width. At the 1-bit
/// corner (`w_bits = 1`, `out_levels = 1`, `a_bits` = the engine's
/// input width) this reproduces
/// [`MemoryModel::allocate_engine`] exactly.
///
/// # Panics
///
/// Panics on degenerate foldings (`p` or `s` zero) or zero-width
/// arrays, like the base model; callers gate those on MP0301/MP0109.
pub fn quantized_engine_memory(
    memory: &MemoryModel,
    spec: &EngineSpec,
    folding: EngineFolding,
    layer: PrecisionSpec,
    out_levels: u64,
) -> EngineMemory {
    let p = folding.p as u64;
    let s = folding.s as u64;
    let plane_bits = spec
        .total_weight_bits()
        .checked_mul(layer.w_bits() as u64)
        .expect("weight plane bits overflow u64");
    let weight_file_depth = plane_bits.div_ceil(p * s);
    let weights = scale_alloc(parameter_array(memory, weight_file_depth, s), p);

    let thresholds = if spec.threshold_bits > 0 {
        let depth = (spec.out_channels as u64).div_ceil(p) * out_levels;
        scale_alloc(
            parameter_array(memory, depth, spec.threshold_bits as u64),
            p,
        )
    } else {
        ArrayAlloc::default()
    };

    let a_bits = layer.a_bits() as u64;
    let buffers = match spec.kind {
        EngineKind::Conv => {
            let depth = (spec.kernel * spec.in_width) as u64;
            let width = spec.in_channels as u64 * a_bits;
            allocate_array(depth, width, 1)
        }
        EngineKind::Fc => allocate_array(2, spec.in_channels as u64 * a_bits, 1),
    };

    EngineMemory {
        weights,
        thresholds,
        buffers,
    }
}

/// One engine's total `(BRAM-18K, LUT)` demand at quantized widths:
/// [`quantized_engine_memory`] plus the datapath at `a_bits`-wide
/// lanes. Shared verbatim between this pass, the oracle's memoised
/// budget stage, and the autotuner's bound function, so all three
/// price a candidate identically.
pub fn quantized_engine_demand(
    memory: &MemoryModel,
    spec: &EngineSpec,
    folding: EngineFolding,
    layer: PrecisionSpec,
    out_levels: u64,
) -> (u64, u64) {
    let mem = quantized_engine_memory(memory, spec, folding, layer, out_levels);
    let mut lanes = spec.clone();
    lanes.input_bits = layer.a_bits();
    let datapath = DatapathModel::default().engine_luts(&lanes, folding);
    (mem.bram_18k(), mem.luts() + datapath)
}

/// Whole-network quantized `(BRAM-18K, LUT)` demand, including the
/// datapath infrastructure. Engine `i`'s ladder length comes from the
/// *next* layer's activation width (the producer re-quantises for its
/// consumer); the last engine feeds raw scores to the DMU.
///
/// # Panics
///
/// Panics if the lists disagree in length or a folding is degenerate.
pub fn quantized_network_demand(
    memory: &MemoryModel,
    engines: &[EngineSpec],
    foldings: &[EngineFolding],
    precision: &NetworkPrecision,
) -> (u64, u64) {
    assert_eq!(engines.len(), foldings.len(), "engine count mismatch");
    assert_eq!(engines.len(), precision.len(), "precision count mismatch");
    let specs = precision.layers();
    let mut bram = 0u64;
    let mut luts = DatapathModel::default().infra_luts;
    for (i, (spec, &f)) in engines.iter().zip(foldings).enumerate() {
        let out_levels = specs
            .get(i + 1)
            .map_or(1, |next| ladder_levels(next.a_bits()));
        let (b, l) = quantized_engine_demand(memory, spec, f, specs[i], out_levels);
        bram += b;
        luts += l;
    }
    (bram, luts)
}

fn parameter_array(memory: &MemoryModel, depth: u64, width: u64) -> ArrayAlloc {
    let blocks = if memory.partitioned {
        best_partition(depth, width)
    } else {
        1
    };
    allocate_array(depth, width, blocks)
}

fn scale_alloc(one: ArrayAlloc, count: u64) -> ArrayAlloc {
    ArrayAlloc {
        bram_18k: one.bram_18k * count,
        luts: one.luts * count,
        stored_bits: one.stored_bits * count,
    }
}

pub(crate) fn check(target: &VerifyTarget, report: &mut Report) {
    let Some(precision) = &target.precision else {
        return;
    };
    // Empty chains and count mismatches are MP0208/MP0211 territory.
    if target.engines.is_empty() || precision.len() != target.engines.len() {
        return;
    }
    let specs = precision.layers();

    // Chain compatibility across inner boundaries. The first engine's
    // pixel width is MP0211's check; every later engine must have lanes
    // at least as wide as the activations its producer emits.
    for (i, spec) in specs.iter().enumerate().skip(1) {
        let engine = &target.engines[i];
        let a = spec.a_bits();
        if engine.input_bits < a {
            report.push(
                codes::MIXED_CHAIN,
                Severity::Error,
                PASS,
                engine_site(i, engine),
                format!(
                    "engine lanes are {} bit(s) wide but the declared precision \
                     streams {a}-bit activations through them; the chain cannot \
                     carry {spec} across this boundary",
                    engine.input_bits
                ),
            );
        } else if engine.input_bits > a {
            report.push(
                codes::MIXED_OVERWIDE,
                Severity::Warning,
                PASS,
                engine_site(i, engine),
                format!(
                    "engine lanes are {} bit(s) wide for {a}-bit activations: \
                     the extra lane bits are dead area",
                    engine.input_bits
                ),
            );
        }
    }

    // i32 fast-path proof at the quantized magnitudes. The 1-bit corner
    // reproduces the binary interval, which MP0201 already covers.
    for (i, (engine, &spec)) in target.engines.iter().zip(specs).enumerate() {
        if spec.w_bits() == 1 && (i == 0 || spec.a_bits() == 1) {
            continue;
        }
        // An unrepresentable interval is MP0209, reported by the
        // interval pass; nothing further is provable here.
        if let Ok(acc) = quant_engine_interval(engine, spec, i == 0) {
            if acc.magnitude().saturating_mul(2) > i64::from(i32::MAX) {
                report.push(
                    codes::QUANT_ACC_OVERFLOW,
                    Severity::Error,
                    PASS,
                    engine_site(i, engine),
                    format!(
                        "at {spec} the quantized accumulator reaches [{}, {}], \
                         escaping the i32 fast path (|acc|*2 > i32::MAX) even \
                         though the binary bound fits",
                        acc.lo, acc.hi
                    ),
                );
            }
        }
    }

    // Quantized budgets need a complete, non-degenerate folding
    // (MP0304/MP0301 gate the rest), and defer to MP0306/MP0307 at the
    // 1-bit corner where both accountings coincide.
    let Some(folding) = &target.folding else {
        return;
    };
    if folding.engines().len() != target.engines.len() {
        return;
    }
    if folding.engines().iter().any(|f| f.p == 0 || f.s == 0) {
        return;
    }
    if is_one_bit_corner(precision) {
        return;
    }
    let (bram, luts) = quantized_network_demand(
        &target.memory,
        &target.engines,
        folding.engines(),
        precision,
    );
    let over_severity = if target.require_fit {
        Severity::Error
    } else {
        Severity::Warning
    };
    let device = &target.device;
    for (code, what, used, budget) in [
        (codes::QUANT_BRAM_BUDGET, "BRAM-18K", bram, device.bram_18k),
        (codes::QUANT_LUT_BUDGET, "LUT", luts, device.luts),
    ] {
        if used > budget {
            report.push(
                code,
                over_severity,
                PASS,
                "device",
                format!(
                    "quantized {what} demand {used} (weight bit-planes + \
                     threshold ladders at {precision}) exceeds the device \
                     budget {budget} ({:.1} %)",
                    100.0 * used as f64 / budget as f64
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use mp_bnn::FinnTopology;
    use mp_fpga::device::Device;
    use mp_fpga::folding::FoldingSearch;

    fn paper_precision(a: usize, w: usize) -> NetworkPrecision {
        let n = FinnTopology::paper().engines().len();
        NetworkPrecision::uniform(n, a, w).unwrap()
    }

    #[test]
    fn one_bit_chain_synthesis_is_identity_plus_threshold_floor() {
        let engines = FinnTopology::paper().engines();
        let n = engines.len();
        let synth = synthesize_quantized_chain(&engines, &NetworkPrecision::one_bit(n).unwrap());
        for (base, s) in engines.iter().zip(&synth) {
            assert_eq!(base.input_bits, s.input_bits);
            // Shipped words already cover the binary intervals.
            assert_eq!(base.threshold_bits, s.threshold_bits);
        }
    }

    #[test]
    fn synthesized_quantized_chain_verifies_clean() {
        let topo = FinnTopology::paper();
        let engines = topo.engines();
        for (a, w) in [(2usize, 2usize), (4, 4), (8, 8), (2, 8), (8, 2)] {
            let precision = paper_precision(a, w);
            let folding = FoldingSearch::new(&engines).balanced(232_558);
            let mut t =
                VerifyTarget::from_topology(format!("synth-a{a}w{w}"), &topo, Device::zu3eg())
                    .exploratory();
            t.engines = synthesize_quantized_chain(&engines, &precision);
            t.folding = Some(folding);
            t.precision = Some(precision);
            let report = verify(&t);
            assert!(!report.has_errors(), "{}", report.render_human());
        }
    }

    #[test]
    fn ladder_lengths_match_level_counts() {
        assert_eq!(ladder_levels(1), 1);
        assert_eq!(ladder_levels(2), 3);
        assert_eq!(ladder_levels(4), 15);
        assert_eq!(ladder_levels(8), 255);
    }

    #[test]
    fn one_bit_corner_detection() {
        let n = 4;
        assert!(is_one_bit_corner(&NetworkPrecision::one_bit(n).unwrap()));
        assert!(!is_one_bit_corner(
            &NetworkPrecision::uniform(n, 1, 2).unwrap()
        ));
        assert!(!is_one_bit_corner(
            &NetworkPrecision::uniform(n, 2, 1).unwrap()
        ));
    }

    #[test]
    fn quantized_memory_reproduces_base_model_at_one_bit() {
        let engines = FinnTopology::paper().engines();
        let one = PrecisionSpec::try_new(1, 1).unwrap();
        for memory in [MemoryModel::naive(), MemoryModel::partitioned()] {
            for spec in engines.iter().skip(1) {
                let f = EngineFolding::new(4, 8);
                let base = memory.allocate_engine(spec, f);
                let quant = quantized_engine_memory(&memory, spec, f, one, 1);
                assert_eq!(base, quant, "{}", spec.name);
            }
        }
    }

    #[test]
    fn weight_planes_scale_with_weight_width() {
        let engines = FinnTopology::paper().engines();
        let f = EngineFolding::new(8, 16);
        let memory = MemoryModel::naive();
        let w1 = quantized_engine_memory(
            &memory,
            &engines[1],
            f,
            PrecisionSpec::try_new(1, 1).unwrap(),
            1,
        );
        let w8 = quantized_engine_memory(
            &memory,
            &engines[1],
            f,
            PrecisionSpec::try_new(1, 8).unwrap(),
            1,
        );
        assert_eq!(w8.weights.stored_bits, 8 * w1.weights.stored_bits);
        assert!(w8.weights.bram_18k >= w1.weights.bram_18k);
    }

    #[test]
    fn threshold_ladders_scale_with_consumer_levels() {
        let engines = FinnTopology::paper().engines();
        let f = EngineFolding::new(8, 16);
        let memory = MemoryModel::naive();
        let spec = PrecisionSpec::try_new(1, 1).unwrap();
        let one = quantized_engine_memory(&memory, &engines[1], f, spec, 1);
        let ladder = quantized_engine_memory(&memory, &engines[1], f, spec, 255);
        assert_eq!(
            ladder.thresholds.stored_bits,
            255 * one.thresholds.stored_bits
        );
    }

    #[test]
    fn quantized_budget_overflow_warns_when_exploratory() {
        // 8×8 everywhere on the small device: weight planes alone blow
        // the zc702 budget; exploratory targets downgrade to warnings.
        let topo = FinnTopology::paper();
        let engines = topo.engines();
        let precision = paper_precision(8, 8);
        let folding = FoldingSearch::new(&engines).balanced(232_558);
        let mut t = VerifyTarget::from_topology("quant-8x8", &topo, Device::zc702()).exploratory();
        t.engines = synthesize_quantized_chain(&engines, &precision);
        t.folding = Some(folding.clone());
        t.precision = Some(precision.clone());
        let report = verify(&t);
        assert!(
            report.has_code(codes::QUANT_BRAM_BUDGET),
            "{}",
            report.render_human()
        );
        assert!(!report.has_errors(), "{}", report.render_human());

        // The same target with require_fit errors out.
        let mut strict = VerifyTarget::from_topology("quant-8x8", &topo, Device::zc702());
        strict.engines = t.engines.clone();
        strict.folding = Some(folding);
        strict.precision = Some(precision);
        let report = verify(&strict);
        assert!(report.has_errors());
    }
}
