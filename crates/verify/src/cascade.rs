//! Cascade decision-policy structure checks (`MP05xx`).
//!
//! [`CascadePolicy::try_new`](mp_core::CascadePolicy::try_new) already
//! rejects malformed chains at construction, but a
//! [`CascadeShape`](mp_core::CascadeShape) can also arrive from a
//! config file, a bench record, or a hand-built experiment — and even a
//! *constructible* cascade can be structurally useless (dead stages,
//! inverted cost ordering). This pass re-derives the construction
//! invariants as coded diagnostics and adds the economic lints the
//! constructor deliberately leaves to tooling:
//!
//! - `MP0501` — empty chain;
//! - `MP0502` — gate present/absent on the wrong side of the terminal
//!   boundary;
//! - `MP0503` — gate outside `[0, 1]` or non-finite;
//! - `MP0504` — a non-final gate of `0.0` accepts everything, making
//!   every later stage unreachable (warning);
//! - `MP0505` — non-finite or non-positive modeled unit cost;
//! - `MP0506` — unit cost not strictly increasing down the chain
//!   (warning: escalation buys no precision headroom);
//! - `MP0507` — a non-final gate of `1.0` escalates everything that
//!   enters, so the stage is pure added latency (warning).

use mp_core::CascadeShape;

use crate::diag::{codes, Report, Severity};
use crate::VerifyTarget;

const PASS: &str = "cascade";

fn stage_site(index: usize, label: &str) -> String {
    format!("stage {index} ({label})")
}

/// Runs the cascade pass over `target.cascade`, if one is attached.
pub fn check(target: &VerifyTarget, report: &mut Report) {
    let Some(shape) = &target.cascade else {
        return;
    };
    check_shape(shape, report);
}

/// The pass body, callable on a bare [`CascadeShape`] (the oracle and
/// golden tests use this directly).
pub fn check_shape(shape: &CascadeShape, report: &mut Report) {
    if shape.stages.is_empty() {
        report.push(
            codes::CASCADE_EMPTY,
            Severity::Error,
            PASS,
            "cascade",
            "cascade has no stages: nothing classifies anything",
        );
        return;
    }
    let last = shape.stages.len() - 1;
    for (i, stage) in shape.stages.iter().enumerate() {
        let site = stage_site(i, &stage.label);
        match (i == last, stage.gate) {
            (false, None) => report.push(
                codes::CASCADE_GATE_PLACEMENT,
                Severity::Error,
                PASS,
                &site,
                "non-final stage has no confidence gate: escalation is undefined here",
            ),
            (true, Some(g)) => report.push(
                codes::CASCADE_GATE_PLACEMENT,
                Severity::Error,
                PASS,
                &site,
                format!(
                    "terminal stage carries a gate ({g}): the final stage must \
                     accept everything that reaches it"
                ),
            ),
            (false, Some(g)) => {
                if !g.is_finite() || !(0.0..=1.0).contains(&g) {
                    report.push(
                        codes::CASCADE_GATE_RANGE,
                        Severity::Error,
                        PASS,
                        &site,
                        format!("gate {g} is outside [0, 1]: no confidence can be compared to it"),
                    );
                } else if g == 0.0 {
                    report.push(
                        codes::CASCADE_UNREACHABLE,
                        Severity::Warning,
                        PASS,
                        &site,
                        format!(
                            "gate 0.0 accepts every image, so stages {}..{} are dead \
                             configuration",
                            i + 1,
                            last
                        ),
                    );
                } else if g == 1.0 {
                    report.push(
                        codes::CASCADE_PASSTHROUGH,
                        Severity::Warning,
                        PASS,
                        &site,
                        "gate 1.0 escalates everything that enters: the stage is pure \
                         added latency",
                    );
                }
            }
            (true, None) => {}
        }
        if !stage.unit_cost_s.is_finite() || stage.unit_cost_s <= 0.0 {
            report.push(
                codes::CASCADE_COST_INVALID,
                Severity::Error,
                PASS,
                &site,
                format!(
                    "modeled unit cost {}s is not a positive finite time",
                    stage.unit_cost_s
                ),
            );
        }
    }
    for (i, pair) in shape.stages.windows(2).enumerate() {
        let (a, b) = (&pair[0], &pair[1]);
        let both_valid = a.unit_cost_s.is_finite()
            && a.unit_cost_s > 0.0
            && b.unit_cost_s.is_finite()
            && b.unit_cost_s > 0.0;
        if both_valid && b.unit_cost_s <= a.unit_cost_s {
            report.push(
                codes::CASCADE_COST_ORDER,
                Severity::Warning,
                PASS,
                stage_site(i + 1, &b.label),
                format!(
                    "unit cost {}s does not exceed stage {i}'s {}s: escalating here \
                     buys no precision headroom",
                    b.unit_cost_s, a.unit_cost_s
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_core::{CascadeShape, StageShape};

    fn stage(label: &str, gate: Option<f64>, cost: f64) -> StageShape {
        StageShape {
            label: label.to_owned(),
            gate,
            unit_cost_s: cost,
        }
    }

    fn run(shape: &CascadeShape) -> Report {
        let mut report = Report::new("test");
        check_shape(shape, &mut report);
        report
    }

    #[test]
    fn well_formed_three_stage_chain_is_clean() {
        let shape = CascadeShape {
            stages: vec![
                stage("1bit", Some(0.6), 0.002),
                stage("a4w4", Some(0.4), 0.008),
                stage("float32", None, 0.033),
            ],
        };
        let report = run(&shape);
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn empty_chain_is_an_error() {
        let report = run(&CascadeShape { stages: Vec::new() });
        assert!(report.has_code(codes::CASCADE_EMPTY));
        assert!(report.has_errors());
    }

    #[test]
    fn gate_placement_both_directions() {
        let shape = CascadeShape {
            stages: vec![
                stage("1bit", None, 0.002),
                stage("float32", Some(0.5), 0.033),
            ],
        };
        let report = run(&shape);
        assert_eq!(
            report
                .codes()
                .iter()
                .filter(|c| **c == codes::CASCADE_GATE_PLACEMENT)
                .count(),
            2,
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn gate_range_rejects_nan_and_out_of_range() {
        for g in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let shape = CascadeShape {
                stages: vec![stage("1bit", Some(g), 0.002), stage("float32", None, 0.033)],
            };
            let report = run(&shape);
            assert!(
                report.has_code(codes::CASCADE_GATE_RANGE),
                "gate {g}: {}",
                report.render_human()
            );
        }
    }

    #[test]
    fn extreme_gates_lint_not_error() {
        let dead = run(&CascadeShape {
            stages: vec![
                stage("1bit", Some(0.0), 0.002),
                stage("float32", None, 0.033),
            ],
        });
        assert!(dead.has_code(codes::CASCADE_UNREACHABLE));
        assert!(!dead.has_errors());
        let passthrough = run(&CascadeShape {
            stages: vec![
                stage("1bit", Some(1.0), 0.002),
                stage("float32", None, 0.033),
            ],
        });
        assert!(passthrough.has_code(codes::CASCADE_PASSTHROUGH));
        assert!(!passthrough.has_errors());
    }

    #[test]
    fn cost_checks_flag_invalid_and_inverted() {
        let invalid = run(&CascadeShape {
            stages: vec![
                stage("1bit", Some(0.5), 0.0),
                stage("float32", None, f64::NAN),
            ],
        });
        assert_eq!(
            invalid
                .codes()
                .iter()
                .filter(|c| **c == codes::CASCADE_COST_INVALID)
                .count(),
            2
        );
        let inverted = run(&CascadeShape {
            stages: vec![
                stage("a4w4", Some(0.5), 0.01),
                stage("1bit", Some(0.5), 0.002),
                stage("float32", None, 0.033),
            ],
        });
        assert!(inverted.has_code(codes::CASCADE_COST_ORDER));
        assert!(!inverted.has_errors());
        // Invalid costs don't double-report as misordered.
        assert!(!invalid.has_code(codes::CASCADE_COST_ORDER));
    }
}
