//! Pass 2: interval abstract interpretation.
//!
//! The XNOR-popcount datapath computes, per output channel,
//! `acc = 2·pos_sum − total` where `total` is the engine's fan-in
//! (`K·K·ID` weight columns), so a fully-binarised accumulator is
//! bounded by `[-fan_in, +fan_in]` regardless of weights or inputs. A
//! `b`-bit input stage (the first engine's Q2.6 pixels, or a
//! partially-binarised inner layer) scales the bound to
//! `fan_in · 2^(b-1)`: pixels are clamped to `±2` and quantised at
//! scale 64, so `|x| ≤ 128 = 2^(8-1)` exactly. These intervals are
//! *sound*: the soundness property test in `tests/props.rs` drives the
//! bit-exact hardware model and asserts every observed accumulator
//! stays inside them.
//!
//! From the intervals the pass proves: the i32 fast-path in
//! `HardwareBnn::infer_batch_with` cannot overflow (`2·bound` must fit
//! an `i32`), the per-engine threshold words are wide enough to
//! represent every reachable accumulation, and — when a folded
//! [`HardwareBnn`](mp_bnn::HardwareBnn) is attached — no threshold
//! saturates into a constant-activation channel. Host float layers get
//! a NaN/Inf taint scan: one non-finite parameter poisons every
//! downstream layer of the sequential network.

use mp_bnn::hardware::HwThreshold;
use mp_bnn::EngineSpec;

use crate::diag::{codes, Report, Severity};
use crate::{engine_site, VerifyTarget};

const PASS: &str = "interval";

/// A closed integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The symmetric interval `[-mag, mag]`.
    pub fn symmetric(mag: i64) -> Self {
        Self { lo: -mag, hi: mag }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Largest absolute value in the interval.
    pub fn magnitude(&self) -> i64 {
        self.lo.abs().max(self.hi.abs())
    }
}

/// Static accumulator interval of one engine: inputs in
/// `[-2^(b-1), 2^(b-1)]` for `b = input_bits` (b=1 gives the binary
/// `±1` case), weights `±1`, fan-in summands.
pub fn engine_accumulator_interval(spec: &EngineSpec) -> Interval {
    accumulator_interval(spec.weight_cols(), spec.input_bits)
}

/// Static accumulator interval from raw fan-in and input width.
pub fn accumulator_interval(fan_in: usize, input_bits: usize) -> Interval {
    let bits = input_bits.clamp(1, 32) as u32;
    let mag = 1i64 << (bits - 1);
    Interval::symmetric(mag.saturating_mul(fan_in as i64))
}

/// Signed range of a `bits`-wide threshold word.
fn threshold_word_range(bits: usize) -> Interval {
    let bits = bits.clamp(1, 62) as u32;
    Interval {
        lo: -(1i64 << (bits - 1)),
        hi: (1i64 << (bits - 1)) - 1,
    }
}

pub(crate) fn check(target: &VerifyTarget, report: &mut Report) {
    check_engine_intervals(target, report);
    check_hardware_thresholds(target, report);
    check_host_taint(target, report);
}

fn check_engine_intervals(target: &VerifyTarget, report: &mut Report) {
    // An empty engine list is legitimate for host-only targets, but a
    // target with no engines, no host and no folded hardware has
    // nothing to verify — report it instead of silently passing. The
    // early return also keeps `last` well-defined below: a
    // `len() - 1` on an empty list would wrap to `usize::MAX` and the
    // last-engine special-casing would never fire.
    if target.engines.is_empty() {
        if target.host.is_none() && target.hw.is_none() {
            report.push(
                codes::EMPTY_TARGET,
                Severity::Error,
                PASS,
                "target",
                "no engines, host network or folded hardware attached: \
                 nothing to verify"
                    .to_owned(),
            );
        }
        return;
    }
    let last = target.engines.len() - 1;
    for (i, e) in target.engines.iter().enumerate() {
        let site = engine_site(i, e);
        let acc = engine_accumulator_interval(e);

        // The optimized batch path accumulates in i32 lanes; the
        // reference path uses i64. Prove the i32 path safe with the
        // same 2x headroom `infer_batch_with` asserts.
        if acc.magnitude().saturating_mul(2) > i64::from(i32::MAX) {
            report.push(
                codes::ACC_OVERFLOW,
                Severity::Error,
                PASS,
                site.clone(),
                format!(
                    "accumulator interval [{}, {}] escapes the i32 fast path \
                     (|acc|*2 > i32::MAX); fan-in {} at {} input bits",
                    acc.lo,
                    acc.hi,
                    e.weight_cols(),
                    e.input_bits
                ),
            );
        }

        if e.threshold_bits > 0 {
            let word = threshold_word_range(e.threshold_bits);
            if acc.lo < word.lo || acc.hi > word.hi {
                report.push(
                    codes::THRESHOLD_NARROW,
                    Severity::Error,
                    PASS,
                    site.clone(),
                    format!(
                        "{}-bit threshold word [{}, {}] cannot represent every \
                         reachable accumulation in [{}, {}]",
                        e.threshold_bits, word.lo, word.hi, acc.lo, acc.hi
                    ),
                );
            }
            if i == last {
                report.push(
                    codes::THRESHOLD_PLACEMENT,
                    Severity::Warning,
                    PASS,
                    site.clone(),
                    "output engine carries threshold memory it never uses \
                     (scores feed the DMU unactivated)"
                        .to_owned(),
                );
            }
        } else if i != last {
            report.push(
                codes::THRESHOLD_PLACEMENT,
                Severity::Error,
                PASS,
                site,
                "inner engine has no activation thresholds: its integer \
                 accumulations cannot re-binarise for the next engine"
                    .to_owned(),
            );
        }
    }
}

/// Classifies a folded threshold against the engine's reachable
/// accumulator interval: `Some(true)` fires for every reachable value,
/// `Some(false)` for none, `None` when the channel can go both ways.
fn constant_activation(t: &HwThreshold, acc: Interval) -> Option<bool> {
    if t.negate {
        // Fires when acc <= bound.
        if t.bound >= acc.hi {
            Some(true)
        } else if t.bound < acc.lo {
            Some(false)
        } else {
            None
        }
    } else {
        // Fires when acc >= bound.
        if t.bound <= acc.lo {
            Some(true)
        } else if t.bound > acc.hi {
            Some(false)
        } else {
            None
        }
    }
}

fn check_hardware_thresholds(target: &VerifyTarget, report: &mut Report) {
    let Some(hw) = target.hw else {
        return;
    };
    for (i, stage) in hw.stage_summaries().iter().enumerate() {
        let site = format!("hw stage {i}");
        let acc = accumulator_interval(stage.fan_in, if stage.first { 8 } else { 1 });

        if !stage.output && stage.thresholds.len() != stage.out_channels {
            report.push(
                codes::THRESHOLD_COUNT,
                Severity::Error,
                PASS,
                site.clone(),
                format!(
                    "{} folded thresholds for {} output channels",
                    stage.thresholds.len(),
                    stage.out_channels
                ),
            );
            continue;
        }

        let constant = stage
            .thresholds
            .iter()
            .filter(|t| constant_activation(t, acc).is_some())
            .count();
        if constant > 0 {
            report.push(
                codes::THRESHOLD_SATURATED,
                Severity::Warning,
                PASS,
                site,
                format!(
                    "{constant} of {} channels have saturated thresholds \
                     (constant activation regardless of input; degenerate \
                     batch-norm fold)",
                    stage.thresholds.len()
                ),
            );
        }
    }
}

fn check_host_taint(target: &VerifyTarget, report: &mut Report) {
    let Some(net) = target.host else {
        return;
    };
    let names = net.layer_names();
    let mut nan_counts = vec![0usize; names.len()];
    let mut inf_counts = vec![0usize; names.len()];
    net.visit_layer_params(&mut |layer, tensor| {
        for &v in tensor.as_slice() {
            if v.is_nan() {
                nan_counts[layer] += 1;
            } else if v.is_infinite() {
                inf_counts[layer] += 1;
            }
        }
    });
    for (i, name) in names.iter().enumerate() {
        let site = format!("host layer {i} ({name})");
        if nan_counts[i] > 0 {
            let downstream = names.len() - 1 - i;
            report.push(
                codes::NAN_TAINT,
                Severity::Error,
                PASS,
                site.clone(),
                format!(
                    "{} NaN parameter(s): NaN propagates through every \
                     arithmetic layer, tainting all {downstream} downstream \
                     layer(s) and the final scores",
                    nan_counts[i]
                ),
            );
        }
        if inf_counts[i] > 0 {
            report.push(
                codes::INF_PARAM,
                Severity::Warning,
                PASS,
                site,
                format!(
                    "{} infinite parameter(s): overflow risk, and 0*inf \
                     products become NaN",
                    inf_counts[i]
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use mp_bnn::FinnTopology;
    use mp_fpga::device::Device;

    #[test]
    fn binary_engine_interval_is_fan_in() {
        let engines = FinnTopology::paper().engines();
        let acc = engine_accumulator_interval(&engines[1]);
        assert_eq!(acc, Interval::symmetric(576));
    }

    #[test]
    fn first_engine_interval_scales_with_pixel_width() {
        let engines = FinnTopology::paper().engines();
        // fan-in 27, 8-bit pixels clamped to ±128.
        let acc = engine_accumulator_interval(&engines[0]);
        assert_eq!(acc, Interval::symmetric(27 * 128));
    }

    #[test]
    fn paper_threshold_widths_are_proven_sufficient() {
        let topo = FinnTopology::paper();
        let t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        let report = verify(&t);
        assert!(!report.has_code(codes::THRESHOLD_NARROW));
        assert!(!report.has_code(codes::ACC_OVERFLOW));
    }

    #[test]
    fn narrow_threshold_word_is_mp0202() {
        let topo = FinnTopology::paper();
        let mut t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        // Engine 1 reaches ±576; an 8-bit word ends at ±128.
        t.engines[1].threshold_bits = 8;
        let report = verify(&t);
        assert!(report.has_code(codes::THRESHOLD_NARROW));
    }

    #[test]
    fn missing_inner_threshold_is_mp0204() {
        let topo = FinnTopology::paper();
        let mut t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        t.engines[2].threshold_bits = 0;
        let report = verify(&t);
        assert!(report.has_code(codes::THRESHOLD_PLACEMENT));
        assert!(report.has_errors());
    }

    #[test]
    fn partially_binarised_intervals_still_fit_16_bit_words() {
        // 4-bit inner activations: fan-in 576 × 8 = ±4608 < ±32768.
        let topo = FinnTopology::paper();
        let mut t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        t.engines = topo.engines_partially_binarised(4);
        let report = verify(&t);
        assert!(
            !report.has_code(codes::THRESHOLD_NARROW),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn constant_activation_classification() {
        let acc = Interval::symmetric(10);
        let always = HwThreshold {
            bound: -10,
            negate: false,
        };
        let never = HwThreshold {
            bound: 11,
            negate: false,
        };
        let live = HwThreshold {
            bound: 0,
            negate: false,
        };
        assert_eq!(constant_activation(&always, acc), Some(true));
        assert_eq!(constant_activation(&never, acc), Some(false));
        assert_eq!(constant_activation(&live, acc), None);
        let neg_always = HwThreshold {
            bound: 10,
            negate: true,
        };
        assert_eq!(constant_activation(&neg_always, acc), Some(true));
    }
}
