//! Pass 2: interval abstract interpretation.
//!
//! The XNOR-popcount datapath computes, per output channel,
//! `acc = 2·pos_sum − total` where `total` is the engine's fan-in
//! (`K·K·ID` weight columns), so a fully-binarised accumulator is
//! bounded by `[-fan_in, +fan_in]` regardless of weights or inputs. A
//! `b`-bit input stage (the first engine's Q2.6 pixels, or a
//! partially-binarised inner layer) scales the bound to
//! `fan_in · 2^(b-1)`: pixels are clamped to `±2` and quantised at
//! scale 64, so `|x| ≤ 128 = 2^(8-1)` exactly. These intervals are
//! *sound*: the soundness property test in `tests/props.rs` drives the
//! bit-exact hardware model and asserts every observed accumulator
//! stays inside them.
//!
//! From the intervals the pass proves: the i32 fast-path in
//! `HardwareBnn::infer_batch_with` cannot overflow (`2·bound` must fit
//! an `i32`), the per-engine threshold words are wide enough to
//! represent every reachable accumulation, and — when a folded
//! [`HardwareBnn`](mp_bnn::HardwareBnn) is attached — no threshold
//! saturates into a constant-activation channel. Host float layers get
//! a NaN/Inf taint scan: one non-finite parameter poisons every
//! downstream layer of the sequential network.

use std::fmt;

use mp_bnn::hardware::HwThreshold;
use mp_bnn::EngineSpec;

use crate::diag::{codes, Report, Severity};
use crate::{engine_site, VerifyTarget};

const PASS: &str = "interval";

/// Typed failure of a static interval computation: the requested
/// `fan_in × level` magnitude does not fit an `i64`, so no sound
/// interval exists. Callers report this as [`codes::INTERVAL_OVERFLOW`]
/// (MP0209) instead of silently wrapping — the pre-fix code computed
/// `mag * fan_in` with unchecked/saturating i64 arithmetic, which an
/// 8-bit activation × 8-bit weight config can overflow at large fan-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalOverflow {
    /// Accumulation fan-in that was requested.
    pub fan_in: usize,
    /// Per-summand magnitude (e.g. `2^(b-1)` or `(2^a−1)·(2^w−1)`).
    pub summand_magnitude: u128,
}

impl fmt::Display for IntervalOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accumulator interval overflows i64: fan-in {} at per-summand \
             magnitude {} exceeds {}",
            self.fan_in,
            self.summand_magnitude,
            i64::MAX
        )
    }
}

impl std::error::Error for IntervalOverflow {}

/// A closed integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The symmetric interval `[-mag, mag]`.
    pub fn symmetric(mag: i64) -> Self {
        Self { lo: -mag, hi: mag }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Largest absolute value in the interval.
    pub fn magnitude(&self) -> i64 {
        self.lo.abs().max(self.hi.abs())
    }
}

/// Static accumulator interval of one engine: inputs in
/// `[-2^(b-1), 2^(b-1)]` for `b = input_bits` (b=1 gives the binary
/// `±1` case), weights `±1`, fan-in summands.
pub fn engine_accumulator_interval(spec: &EngineSpec) -> Result<Interval, IntervalOverflow> {
    accumulator_interval(spec.weight_cols(), spec.input_bits)
}

/// Static accumulator interval from raw fan-in and input width.
///
/// Returns [`IntervalOverflow`] when `fan_in · 2^(input_bits-1)` does
/// not fit an `i64` — previously this saturated silently, producing a
/// wrapped-looking but formally "valid" interval that downstream width
/// proofs trusted.
pub fn accumulator_interval(
    fan_in: usize,
    input_bits: usize,
) -> Result<Interval, IntervalOverflow> {
    let bits = input_bits.clamp(1, 32) as u32;
    let summand = 1i64 << (bits - 1);
    checked_symmetric(fan_in, summand)
}

/// Static accumulator interval of a quantized (multi-plane) engine:
/// activations are odd integers in `[-(2^a−1), 2^a−1]`, weights odd
/// integers in `[-(2^w−1), 2^w−1]`, so one product is bounded by
/// `(2^a−1)·(2^w−1)` and the accumulation by `fan_in` times that.
pub fn quant_accumulator_interval(
    fan_in: usize,
    a_bits: usize,
    w_bits: usize,
) -> Result<Interval, IntervalOverflow> {
    let a = a_bits.clamp(1, 32) as u32;
    let w = w_bits.clamp(1, 32) as u32;
    let levels_a = (1i64 << a) - 1;
    let levels_w = (1i64 << w) - 1;
    match levels_a.checked_mul(levels_w) {
        Some(summand) => checked_symmetric(fan_in, summand),
        None => Err(IntervalOverflow {
            fan_in,
            summand_magnitude: levels_a as u128 * levels_w as u128,
        }),
    }
}

/// Static accumulator interval of `engine` running at quantized widths
/// `spec`. Inner engines accumulate odd activation levels in
/// `±(2^a−1)`; the `first` engine accumulates `2^(a−1)`-bounded pixels
/// (the Q2.6 input quantisation), matching the tighter bound the
/// executable `QuantBnn` first stage actually reaches. Weights are odd
/// levels in `±(2^w−1)` either way.
pub fn quant_engine_interval(
    engine: &EngineSpec,
    spec: mp_int::PrecisionSpec,
    first: bool,
) -> Result<Interval, IntervalOverflow> {
    if first {
        let a = spec.a_bits().clamp(1, 32) as u32;
        let w = spec.w_bits().clamp(1, 32) as u32;
        let pixel = 1i64 << (a - 1);
        let levels_w = (1i64 << w) - 1;
        match pixel.checked_mul(levels_w) {
            Some(summand) => checked_symmetric(engine.weight_cols(), summand),
            None => Err(IntervalOverflow {
                fan_in: engine.weight_cols(),
                summand_magnitude: pixel as u128 * levels_w as u128,
            }),
        }
    } else {
        quant_accumulator_interval(engine.weight_cols(), spec.a_bits(), spec.w_bits())
    }
}

/// `[-summand·fan_in, +summand·fan_in]` with overflow detection.
fn checked_symmetric(fan_in: usize, summand: i64) -> Result<Interval, IntervalOverflow> {
    let overflow = IntervalOverflow {
        fan_in,
        summand_magnitude: summand as u128,
    };
    let fan = i64::try_from(fan_in).map_err(|_| overflow)?;
    let mag = summand.checked_mul(fan).ok_or(overflow)?;
    Ok(Interval::symmetric(mag))
}

/// Smallest threshold-word width (bits) whose signed range covers the
/// interval, or `None` when even the widest supported word (62 bits,
/// see [`threshold_word_range`]) cannot. Used by config synthesis to
/// size threshold memories for quantized engines.
pub fn required_threshold_bits(acc: Interval) -> Option<usize> {
    (1..=62).find(|&bits| {
        let word = threshold_word_range(bits);
        word.lo <= acc.lo && acc.hi <= word.hi
    })
}

/// Signed range of a `bits`-wide threshold word.
pub(crate) fn threshold_word_range(bits: usize) -> Interval {
    let bits = bits.clamp(1, 62) as u32;
    Interval {
        lo: -(1i64 << (bits - 1)),
        hi: (1i64 << (bits - 1)) - 1,
    }
}

pub(crate) fn check(target: &VerifyTarget, report: &mut Report) {
    check_engine_intervals(target, report);
    check_quant_precision(target, report);
    check_hardware_thresholds(target, report);
    check_host_taint(target, report);
}

/// MP0210/MP0211: re-derives every engine's accumulator interval at the
/// declared quantized widths and proves the threshold words still fit.
fn check_quant_precision(target: &VerifyTarget, report: &mut Report) {
    let Some(precision) = &target.precision else {
        return;
    };
    if target.engines.is_empty() {
        return;
    }
    if precision.len() != target.engines.len() {
        report.push(
            codes::PRECISION_MISMATCH,
            Severity::Error,
            PASS,
            "precision",
            format!(
                "precision declares {} layer(s) but the engine chain has {}",
                precision.len(),
                target.engines.len()
            ),
        );
        return;
    }
    let specs = precision.layers();
    if specs[0].a_bits() != target.engines[0].input_bits {
        report.push(
            codes::PRECISION_MISMATCH,
            Severity::Error,
            PASS,
            engine_site(0, &target.engines[0]),
            format!(
                "first engine consumes {}-bit pixels but the precision \
                 declares {} activation bits",
                target.engines[0].input_bits,
                specs[0].a_bits()
            ),
        );
    }
    let last = target.engines.len() - 1;
    for (i, (engine, &spec)) in target.engines.iter().zip(specs).enumerate() {
        let site = engine_site(i, engine);
        // The 1-bit corner reproduces the binary interval exactly, and
        // MP0201/MP0202 already cover it — don't double-report.
        if spec.w_bits() == 1 && (i == 0 || spec.a_bits() == 1) {
            continue;
        }
        let acc = match quant_engine_interval(engine, spec, i == 0) {
            Ok(acc) => acc,
            Err(overflow) => {
                report.push(
                    codes::INTERVAL_OVERFLOW,
                    Severity::Error,
                    PASS,
                    site,
                    format!("at {spec}: {overflow}; no sound width proof is possible"),
                );
                continue;
            }
        };
        if i != last && engine.threshold_bits > 0 {
            let word = threshold_word_range(engine.threshold_bits);
            if acc.lo < word.lo || acc.hi > word.hi {
                let needed = required_threshold_bits(acc)
                    .map(|b| format!("{b}"))
                    .unwrap_or_else(|| ">62".to_owned());
                report.push(
                    codes::QUANT_THRESHOLD_NARROW,
                    Severity::Error,
                    PASS,
                    site,
                    format!(
                        "at {spec} the accumulator reaches [{}, {}], which the \
                         {}-bit threshold word [{}, {}] cannot represent \
                         ({needed} bits required)",
                        acc.lo, acc.hi, engine.threshold_bits, word.lo, word.hi
                    ),
                );
            }
        }
    }
}

fn check_engine_intervals(target: &VerifyTarget, report: &mut Report) {
    // An empty engine list is legitimate for host-only targets, but a
    // target with no engines, no host and no folded hardware has
    // nothing to verify — report it instead of silently passing. The
    // early return also keeps `last` well-defined below: a
    // `len() - 1` on an empty list would wrap to `usize::MAX` and the
    // last-engine special-casing would never fire.
    if target.engines.is_empty() {
        if target.host.is_none() && target.hw.is_none() {
            report.push(
                codes::EMPTY_TARGET,
                Severity::Error,
                PASS,
                "target",
                "no engines, host network or folded hardware attached: \
                 nothing to verify"
                    .to_owned(),
            );
        }
        return;
    }
    let last = target.engines.len() - 1;
    for (i, e) in target.engines.iter().enumerate() {
        let site = engine_site(i, e);
        let acc = match engine_accumulator_interval(e) {
            Ok(acc) => acc,
            Err(overflow) => {
                report.push(
                    codes::INTERVAL_OVERFLOW,
                    Severity::Error,
                    PASS,
                    site,
                    format!("{overflow}; no sound width proof is possible"),
                );
                continue;
            }
        };

        // The optimized batch path accumulates in i32 lanes; the
        // reference path uses i64. Prove the i32 path safe with the
        // same 2x headroom `infer_batch_with` asserts.
        if acc.magnitude().saturating_mul(2) > i64::from(i32::MAX) {
            report.push(
                codes::ACC_OVERFLOW,
                Severity::Error,
                PASS,
                site.clone(),
                format!(
                    "accumulator interval [{}, {}] escapes the i32 fast path \
                     (|acc|*2 > i32::MAX); fan-in {} at {} input bits",
                    acc.lo,
                    acc.hi,
                    e.weight_cols(),
                    e.input_bits
                ),
            );
        }

        if e.threshold_bits > 0 {
            let word = threshold_word_range(e.threshold_bits);
            if acc.lo < word.lo || acc.hi > word.hi {
                report.push(
                    codes::THRESHOLD_NARROW,
                    Severity::Error,
                    PASS,
                    site.clone(),
                    format!(
                        "{}-bit threshold word [{}, {}] cannot represent every \
                         reachable accumulation in [{}, {}]",
                        e.threshold_bits, word.lo, word.hi, acc.lo, acc.hi
                    ),
                );
            }
            if i == last {
                report.push(
                    codes::THRESHOLD_PLACEMENT,
                    Severity::Warning,
                    PASS,
                    site.clone(),
                    "output engine carries threshold memory it never uses \
                     (scores feed the DMU unactivated)"
                        .to_owned(),
                );
            }
        } else if i != last {
            report.push(
                codes::THRESHOLD_PLACEMENT,
                Severity::Error,
                PASS,
                site,
                "inner engine has no activation thresholds: its integer \
                 accumulations cannot re-binarise for the next engine"
                    .to_owned(),
            );
        }
    }
}

/// Classifies a folded threshold against the engine's reachable
/// accumulator interval: `Some(true)` fires for every reachable value,
/// `Some(false)` for none, `None` when the channel can go both ways.
fn constant_activation(t: &HwThreshold, acc: Interval) -> Option<bool> {
    if t.negate {
        // Fires when acc <= bound.
        if t.bound >= acc.hi {
            Some(true)
        } else if t.bound < acc.lo {
            Some(false)
        } else {
            None
        }
    } else {
        // Fires when acc >= bound.
        if t.bound <= acc.lo {
            Some(true)
        } else if t.bound > acc.hi {
            Some(false)
        } else {
            None
        }
    }
}

fn check_hardware_thresholds(target: &VerifyTarget, report: &mut Report) {
    let Some(hw) = target.hw else {
        return;
    };
    for (i, stage) in hw.stage_summaries().iter().enumerate() {
        let site = format!("hw stage {i}");
        let acc = match accumulator_interval(stage.fan_in, if stage.first { 8 } else { 1 }) {
            Ok(acc) => acc,
            Err(overflow) => {
                report.push(
                    codes::INTERVAL_OVERFLOW,
                    Severity::Error,
                    PASS,
                    site,
                    format!("{overflow}; no sound width proof is possible"),
                );
                continue;
            }
        };

        if !stage.output && stage.thresholds.len() != stage.out_channels {
            report.push(
                codes::THRESHOLD_COUNT,
                Severity::Error,
                PASS,
                site.clone(),
                format!(
                    "{} folded thresholds for {} output channels",
                    stage.thresholds.len(),
                    stage.out_channels
                ),
            );
            continue;
        }

        let constant = stage
            .thresholds
            .iter()
            .filter(|t| constant_activation(t, acc).is_some())
            .count();
        if constant > 0 {
            report.push(
                codes::THRESHOLD_SATURATED,
                Severity::Warning,
                PASS,
                site,
                format!(
                    "{constant} of {} channels have saturated thresholds \
                     (constant activation regardless of input; degenerate \
                     batch-norm fold)",
                    stage.thresholds.len()
                ),
            );
        }
    }
}

fn check_host_taint(target: &VerifyTarget, report: &mut Report) {
    let Some(net) = target.host else {
        return;
    };
    let names = net.layer_names();
    let mut nan_counts = vec![0usize; names.len()];
    let mut inf_counts = vec![0usize; names.len()];
    net.visit_layer_params(&mut |layer, tensor| {
        for &v in tensor.as_slice() {
            if v.is_nan() {
                nan_counts[layer] += 1;
            } else if v.is_infinite() {
                inf_counts[layer] += 1;
            }
        }
    });
    for (i, name) in names.iter().enumerate() {
        let site = format!("host layer {i} ({name})");
        if nan_counts[i] > 0 {
            let downstream = names.len() - 1 - i;
            report.push(
                codes::NAN_TAINT,
                Severity::Error,
                PASS,
                site.clone(),
                format!(
                    "{} NaN parameter(s): NaN propagates through every \
                     arithmetic layer, tainting all {downstream} downstream \
                     layer(s) and the final scores",
                    nan_counts[i]
                ),
            );
        }
        if inf_counts[i] > 0 {
            report.push(
                codes::INF_PARAM,
                Severity::Warning,
                PASS,
                site,
                format!(
                    "{} infinite parameter(s): overflow risk, and 0*inf \
                     products become NaN",
                    inf_counts[i]
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use mp_bnn::FinnTopology;
    use mp_fpga::device::Device;

    #[test]
    fn binary_engine_interval_is_fan_in() {
        let engines = FinnTopology::paper().engines();
        let acc = engine_accumulator_interval(&engines[1]).unwrap();
        assert_eq!(acc, Interval::symmetric(576));
    }

    #[test]
    fn first_engine_interval_scales_with_pixel_width() {
        let engines = FinnTopology::paper().engines();
        // fan-in 27, 8-bit pixels clamped to ±128.
        let acc = engine_accumulator_interval(&engines[0]).unwrap();
        assert_eq!(acc, Interval::symmetric(27 * 128));
    }

    #[test]
    fn oversized_fan_in_is_a_typed_overflow_not_a_wrap() {
        // 2^60 summands at 2^31 each would need 91 bits; the old code
        // saturated to i64::MAX and kept "proving" widths against it.
        let err = accumulator_interval(1 << 60, 32).unwrap_err();
        assert_eq!(err.fan_in, 1 << 60);
        assert_eq!(err.summand_magnitude, 1 << 31);
        assert!(err.to_string().contains("overflows i64"));
    }

    #[test]
    fn quant_interval_matches_level_product() {
        // fan-in 576, 4-bit activations (±15), 2-bit weights (±3).
        let acc = quant_accumulator_interval(576, 4, 2).unwrap();
        assert_eq!(acc, Interval::symmetric(576 * 15 * 3));
        // 1×1 bit degenerates to the binary case.
        assert_eq!(
            quant_accumulator_interval(576, 1, 1).unwrap(),
            Interval::symmetric(576)
        );
        // Overflow path: 32×32-bit levels at huge fan-in.
        assert!(quant_accumulator_interval(1 << 62, 32, 32).is_err());
    }

    #[test]
    fn required_threshold_bits_is_minimal() {
        // ±576 needs 11 bits: a 10-bit word tops out at 511.
        assert_eq!(required_threshold_bits(Interval::symmetric(576)), Some(11));
        assert_eq!(required_threshold_bits(Interval::symmetric(511)), Some(10));
        // Asymmetric edge: hi = 2^(b-1) exactly does NOT fit b bits.
        assert_eq!(
            required_threshold_bits(Interval { lo: -512, hi: 512 }),
            Some(11)
        );
        assert_eq!(required_threshold_bits(Interval::symmetric(i64::MAX)), None);
    }

    #[test]
    fn paper_threshold_widths_are_proven_sufficient() {
        let topo = FinnTopology::paper();
        let t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        let report = verify(&t);
        assert!(!report.has_code(codes::THRESHOLD_NARROW));
        assert!(!report.has_code(codes::ACC_OVERFLOW));
    }

    #[test]
    fn narrow_threshold_word_is_mp0202() {
        let topo = FinnTopology::paper();
        let mut t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        // Engine 1 reaches ±576; an 8-bit word ends at ±128.
        t.engines[1].threshold_bits = 8;
        let report = verify(&t);
        assert!(report.has_code(codes::THRESHOLD_NARROW));
    }

    #[test]
    fn missing_inner_threshold_is_mp0204() {
        let topo = FinnTopology::paper();
        let mut t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        t.engines[2].threshold_bits = 0;
        let report = verify(&t);
        assert!(report.has_code(codes::THRESHOLD_PLACEMENT));
        assert!(report.has_errors());
    }

    #[test]
    fn partially_binarised_intervals_still_fit_16_bit_words() {
        // 4-bit inner activations: fan-in 576 × 8 = ±4608 < ±32768.
        let topo = FinnTopology::paper();
        let mut t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        t.engines = topo.engines_partially_binarised(4);
        let report = verify(&t);
        assert!(
            !report.has_code(codes::THRESHOLD_NARROW),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn golden_mp0209_oversized_engine_interval() {
        // A forged engine whose fan-in × summand escapes i64: the pass
        // must surface the typed overflow, not a wrapped interval.
        let topo = FinnTopology::paper();
        let mut t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702());
        t.engines[1].in_channels = 1 << 33;
        t.engines[1].input_bits = 32;
        let report = verify(&t);
        assert!(report.has_code(codes::INTERVAL_OVERFLOW));
        assert!(report.has_errors());
    }

    #[test]
    fn golden_mp0210_quantized_widths_escape_threshold_words() {
        // 8×8-bit layers reach ±576·255·255 ≈ ±37M on engine 1; its
        // shipped 16-bit threshold word tops out at ±32768.
        let topo = FinnTopology::paper();
        let n = topo.engines().len();
        let t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702())
            .with_precision(mp_int::NetworkPrecision::uniform(n, 8, 8).unwrap());
        let report = verify(&t);
        assert!(report.has_code(codes::QUANT_THRESHOLD_NARROW));
        assert!(!report.has_code(codes::PRECISION_MISMATCH));
    }

    #[test]
    fn one_bit_precision_adds_no_quant_diagnostics() {
        let topo = FinnTopology::paper();
        let n = topo.engines().len();
        let t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702())
            .with_precision(mp_int::NetworkPrecision::one_bit(n).unwrap());
        let report = verify(&t);
        assert!(!report.has_code(codes::QUANT_THRESHOLD_NARROW));
        assert!(!report.has_code(codes::PRECISION_MISMATCH));
        assert!(!report.has_errors(), "{}", report.render_human());
    }

    #[test]
    fn golden_mp0211_precision_layer_count_mismatch() {
        let topo = FinnTopology::paper();
        let t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702())
            .with_precision(mp_int::NetworkPrecision::uniform(3, 4, 4).unwrap());
        let report = verify(&t);
        assert!(report.has_code(codes::PRECISION_MISMATCH));
        assert!(report.has_errors());
    }

    #[test]
    fn golden_mp0211_first_layer_pixel_width_mismatch() {
        let topo = FinnTopology::paper();
        let n = topo.engines().len();
        let mut t = crate::VerifyTarget::from_topology("t", &topo, Device::zc702())
            .with_precision(mp_int::NetworkPrecision::uniform(n, 4, 4).unwrap());
        // Forge a first engine that consumes 1-bit inputs: the declared
        // 8-bit pixel stage no longer matches.
        t.engines[0].input_bits = 1;
        let report = verify(&t);
        assert!(report.has_code(codes::PRECISION_MISMATCH));
    }

    #[test]
    fn quant_first_engine_interval_uses_pixel_bound() {
        let engines = FinnTopology::paper().engines();
        let spec = mp_int::PrecisionSpec::try_new(8, 4).unwrap();
        // fan-in 27, pixels ±128, weights ±15.
        let acc = quant_engine_interval(&engines[0], spec, true).unwrap();
        assert_eq!(acc, Interval::symmetric(27 * 128 * 15));
        // Inner form would use the looser ±255 activation levels.
        let inner = quant_engine_interval(&engines[0], spec, false).unwrap();
        assert_eq!(inner, Interval::symmetric(27 * 255 * 15));
    }

    #[test]
    fn constant_activation_classification() {
        let acc = Interval::symmetric(10);
        let always = HwThreshold {
            bound: -10,
            negate: false,
        };
        let never = HwThreshold {
            bound: 11,
            negate: false,
        };
        let live = HwThreshold {
            bound: 0,
            negate: false,
        };
        assert_eq!(constant_activation(&always, acc), Some(true));
        assert_eq!(constant_activation(&never, acc), Some(false));
        assert_eq!(constant_activation(&live, acc), None);
        let neg_always = HwThreshold {
            bound: 10,
            negate: true,
        };
        assert_eq!(constant_activation(&neg_always, acc), Some(true));
    }
}
