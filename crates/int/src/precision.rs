//! Per-layer precision configuration for the quantized integer path.

use std::fmt;

use serde::{Deserialize, Error, Serialize, Value};

/// Widths a multi-precision engine supports for either operand.
pub const SUPPORTED_BITS: [usize; 4] = [1, 2, 4, 8];

/// Pixel width the first layer always consumes (Q2.6 fixed point, the
/// same grid as the 1-bit hardware path).
pub const FIRST_LAYER_A_BITS: usize = 8;

/// Why a precision configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionError {
    /// A bit width outside {1, 2, 4, 8}.
    InvalidBits(usize),
    /// A network precision with no layers.
    Empty,
    /// The first layer's activation width is not 8 (pixels are Q2.6).
    FirstLayerBits(usize),
}

impl fmt::Display for PrecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecisionError::InvalidBits(b) => {
                write!(f, "bit width {b} unsupported (must be 1, 2, 4 or 8)")
            }
            PrecisionError::Empty => write!(f, "network precision has no layers"),
            PrecisionError::FirstLayerBits(b) => write!(
                f,
                "first layer consumes {FIRST_LAYER_A_BITS}-bit pixels, \
                 not {b}-bit activations"
            ),
        }
    }
}

impl std::error::Error for PrecisionError {}

/// One layer's operand widths: `a_bits` is the width of the
/// activations the layer *consumes*, `w_bits` the width of its weights.
/// Fields are private so every constructed value is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct PrecisionSpec {
    a_bits: usize,
    w_bits: usize,
}

impl PrecisionSpec {
    /// Validates `(a_bits, w_bits) ∈ {1, 2, 4, 8}²`.
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError::InvalidBits`] for any other width.
    pub fn try_new(a_bits: usize, w_bits: usize) -> Result<Self, PrecisionError> {
        for bits in [a_bits, w_bits] {
            if !SUPPORTED_BITS.contains(&bits) {
                return Err(PrecisionError::InvalidBits(bits));
            }
        }
        Ok(Self { a_bits, w_bits })
    }

    /// Input-activation width in bits.
    pub fn a_bits(&self) -> usize {
        self.a_bits
    }

    /// Weight width in bits.
    pub fn w_bits(&self) -> usize {
        self.w_bits
    }
}

impl fmt::Display for PrecisionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}w{}", self.a_bits, self.w_bits)
    }
}

impl<'de> Deserialize<'de> for PrecisionSpec {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let a_bits = usize::from_value(value.get_field("a_bits")?)?;
        let w_bits = usize::from_value(value.get_field("w_bits")?)?;
        PrecisionSpec::try_new(a_bits, w_bits).map_err(Error::custom)
    }
}

/// Per-layer precision of a whole network. Invariants (enforced by
/// every constructor and the checked `Deserialize`): non-empty, every
/// width supported, and the first layer consumes 8-bit pixels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NetworkPrecision {
    layers: Vec<PrecisionSpec>,
}

impl NetworkPrecision {
    /// Validates a per-layer precision list.
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError::Empty`] for an empty list and
    /// [`PrecisionError::FirstLayerBits`] when the first layer does not
    /// consume 8-bit pixels.
    pub fn try_new(layers: Vec<PrecisionSpec>) -> Result<Self, PrecisionError> {
        let first = layers.first().ok_or(PrecisionError::Empty)?;
        if first.a_bits() != FIRST_LAYER_A_BITS {
            return Err(PrecisionError::FirstLayerBits(first.a_bits()));
        }
        Ok(Self { layers })
    }

    /// Uniform precision: every inner layer at `(a_bits, w_bits)`, the
    /// first layer at `(8, w_bits)` (pixels are always 8-bit).
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError`] for unsupported widths or
    /// `layer_count == 0`.
    pub fn uniform(
        layer_count: usize,
        a_bits: usize,
        w_bits: usize,
    ) -> Result<Self, PrecisionError> {
        if layer_count == 0 {
            return Err(PrecisionError::Empty);
        }
        let mut layers = vec![PrecisionSpec::try_new(FIRST_LAYER_A_BITS, w_bits)?];
        layers.extend(vec![
            PrecisionSpec::try_new(a_bits, w_bits)?;
            layer_count - 1
        ]);
        Self::try_new(layers)
    }

    /// The 1-bit corner: binary activations and weights everywhere
    /// (first layer still 8-bit pixels) — the configuration whose
    /// integer path is bit-identical to the BNN XNOR fast path.
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError::Empty`] when `layer_count == 0`.
    pub fn one_bit(layer_count: usize) -> Result<Self, PrecisionError> {
        Self::uniform(layer_count, 1, 1)
    }

    /// Per-layer specs, first to last.
    pub fn layers(&self) -> &[PrecisionSpec] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Never true (construction rejects empty lists); present for
    /// `len`/`is_empty` symmetry.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl fmt::Display for NetworkPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, spec) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

impl<'de> Deserialize<'de> for NetworkPrecision {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let layers = Vec::<PrecisionSpec>::from_value(value.get_field("layers")?)?;
        NetworkPrecision::try_new(layers).map_err(Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_widths_only() {
        for bits in SUPPORTED_BITS {
            assert!(PrecisionSpec::try_new(bits, bits).is_ok());
        }
        for bits in [0usize, 3, 5, 6, 7, 9, 16, 32] {
            assert_eq!(
                PrecisionSpec::try_new(bits, 1),
                Err(PrecisionError::InvalidBits(bits)),
                "a_bits {bits}"
            );
            assert_eq!(
                PrecisionSpec::try_new(1, bits),
                Err(PrecisionError::InvalidBits(bits)),
                "w_bits {bits}"
            );
        }
    }

    #[test]
    fn network_invariants() {
        assert_eq!(
            NetworkPrecision::try_new(vec![]),
            Err(PrecisionError::Empty)
        );
        let inner = PrecisionSpec::try_new(2, 4).unwrap();
        assert_eq!(
            NetworkPrecision::try_new(vec![inner]),
            Err(PrecisionError::FirstLayerBits(2))
        );
        let first = PrecisionSpec::try_new(8, 4).unwrap();
        let net = NetworkPrecision::try_new(vec![first, inner]).unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.layers()[1].a_bits(), 2);
    }

    #[test]
    fn uniform_pins_first_layer_to_pixels() {
        let net = NetworkPrecision::uniform(4, 2, 4).unwrap();
        assert_eq!(net.layers()[0].a_bits(), 8);
        assert_eq!(net.layers()[0].w_bits(), 4);
        assert!(net.layers()[1..]
            .iter()
            .all(|s| s.a_bits() == 2 && s.w_bits() == 4));
        assert_eq!(
            NetworkPrecision::uniform(0, 2, 4),
            Err(PrecisionError::Empty)
        );
        assert_eq!(net.to_string(), "a8w4-a2w4-a2w4-a2w4");
    }

    #[test]
    fn one_bit_corner_is_binary_with_pixel_first_layer() {
        let net = NetworkPrecision::one_bit(3).unwrap();
        assert_eq!(net.layers()[0].a_bits(), 8);
        assert!(net.layers().iter().all(|s| s.w_bits() == 1));
        assert!(net.layers()[1..].iter().all(|s| s.a_bits() == 1));
    }

    #[test]
    fn checked_deserialize_rejects_invalid() {
        let good = NetworkPrecision::uniform(2, 4, 4).unwrap();
        let round = NetworkPrecision::from_value(&good.to_value()).unwrap();
        assert_eq!(round, good);

        // Forge an unsupported width through the serialized form.
        let spec = PrecisionSpec::try_new(4, 4).unwrap();
        let mut value = spec.to_value();
        if let Value::Map(entries) = &mut value {
            for (key, field) in entries.iter_mut() {
                if key == "a_bits" {
                    *field = Value::UInt(3);
                }
            }
        }
        assert!(PrecisionSpec::from_value(&value).is_err());
    }
}
