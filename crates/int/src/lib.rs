//! # mp-int
//!
//! The multi-precision integer inference path: the generalisation of
//! the 1-bit BNN datapath to per-layer `(a_bits, w_bits) ∈ {1, 2, 4, 8}²`
//! quantized layers, priced by an MPIC-style cycle-cost lookup table.
//!
//! Three pieces compose here:
//!
//! 1. **Configuration** ([`precision`]): [`PrecisionSpec`] /
//!    [`NetworkPrecision`] are validated per-layer width choices —
//!    every constructor and the checked `Deserialize` enforce the
//!    supported width set and the fixed 8-bit pixel first layer.
//! 2. **Execution** ([`quant`]): [`QuantBnn`] quantizes a trained
//!    `BnnClassifier` to a precision and runs it on plane-decomposed
//!    integer arithmetic (`mp_bnn::planes`), with batch-norm + quantize
//!    pairs folded into integer threshold ladders. Its 1-bit corner is
//!    bit-identical to `mp_bnn::HardwareBnn`.
//! 3. **Cost** ([`cost`]): [`CostLut`] tabulates MACs/cycle per width
//!    pair (the MPIC measurements) and converts a [`NetworkPrecision`]
//!    into a single MAC-weighted multiplier on the eq. (3)/(4) 1-bit
//!    cycle model, which is how quantized configurations are priced in
//!    the pipeline's modeled throughput.
//!
//! # Example
//!
//! ```
//! use mp_int::{CostLut, NetworkPrecision};
//!
//! let lut = CostLut::mpic();
//! let net = NetworkPrecision::uniform(9, 4, 4).unwrap();
//! let macs = vec![1000u64; 9];
//! // 4-bit MACs cost more cycles than XNOR ones.
//! assert!(lut.network_factor(&net, &macs) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cost;
pub mod precision;
pub mod quant;

pub use cost::{CostError, CostLut};
pub use precision::{
    NetworkPrecision, PrecisionError, PrecisionSpec, FIRST_LAYER_A_BITS, SUPPORTED_BITS,
};
pub use quant::{LevelThresholds, QuantBnn};
