//! The multi-precision integer inference network.
//!
//! [`QuantBnn`] is the `b`-bit generalisation of `mp_bnn::HardwareBnn`:
//! each layer runs at its own `(a_bits, w_bits) ∈ {1, 2, 4, 8}²`
//! precision (a [`NetworkPrecision`]), weights are quantized latent
//! floats packed into signed bit planes ([`PlaneMatrix`]), activations
//! are odd integer levels in `[−L, L]`, and every batch-norm + quantize
//! pair folds into a ladder of integer threshold comparisons
//! ([`LevelThresholds`]) — the multi-level FINN fold the paper's §II
//! describes for its partially-binarised variants.
//!
//! # The 1-bit corner is the BNN
//!
//! At [`NetworkPrecision::one_bit`] every piece of this path degenerates
//! to the XNOR datapath by construction:
//!
//! - a 1-plane [`PlaneMatrix`] is the `BitMatrix` sign packing (weights
//!   quantize by sign, exactly like `binary_weight()`);
//! - a 1-level [`LevelThresholds`] is one [`HwThreshold`] whose bound is
//!   IEEE-bit-identical to `BatchNorm::fold_threshold` (the single
//!   boundary sits at `x = 0`, so `v₀ = μ − β·σ/γ` evaluates the same
//!   float expression);
//! - max-pooling over `{−1, +1}` levels is OR-pooling.
//!
//! The property tests pin this: `QuantBnn` at `one_bit` produces scores
//! bit-identical to `HardwareBnn`.
//!
//! # Score scale
//!
//! A `q_a·q_w` integer product at levels `(L_a, L_w)` represents the
//! real product scaled by `L_a·L_w`, so [`QuantBnn::infer_batch`]
//! divides the output accumulations by [`QuantBnn::scores_scale`] to
//! keep scores comparable across precisions (at 1 bit the scale is 1
//! and the scores equal the hardware integers).

use serde::{Deserialize, Serialize};

use mp_bnn::hardware::{HwThreshold, INPUT_QUANT_SCALE};
use mp_bnn::planes::{levels, quantize_level, PlaneMatrix, PlaneVec};
use mp_bnn::{BnFold, BnnClassifier, FinnTopology, HardwareBnn, LatentKind};
use mp_obs::{now_ns, Recorder};
use mp_tensor::{Parallelism, Shape, ShapeError, Tensor};

use crate::cost::CostLut;
use crate::precision::NetworkPrecision;

/// A folded multi-level activation for one output channel: the
/// `L' = 2^out_bits − 1` boundary comparisons that replace
/// `quantize(batch_norm(acc))`.
///
/// Boundary `u` separates level index `u` from `u + 1`; by
/// monotonicity of the batch-norm affine, the fired boundaries are
/// always a prefix (γ > 0) or suffix (γ < 0) of the ladder, so the
/// quantized activation is just the *count* of fired boundaries mapped
/// back to the odd-level grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelThresholds {
    bounds: Vec<HwThreshold>,
}

impl LevelThresholds {
    /// Folds one channel's batch-norm parameters into `2^out_bits − 1`
    /// integer bounds at accumulator scale `scale`.
    ///
    /// Boundary `u` of the quantizer sits at
    /// `x_u = 2·(u + 0.5)/L' − 1` in batch-norm output space; solving
    /// `γ·(y − μ)/σ + β ≥ x_u` for the pre-norm value `y = acc/scale`
    /// gives the integer comparison. Degenerate γ (constant β output)
    /// folds each boundary to always/never.
    pub fn from_fold(fold: &BnFold, out_bits: usize, scale: f32) -> Self {
        let lp = levels(out_bits);
        let degenerate = fold.gamma.abs() < f32::EPSILON;
        let negate = fold.gamma < 0.0;
        let bounds = (0..lp)
            .map(|u| {
                let x_u = 2.0 * (u as f32 + 0.5) / lp as f32 - 1.0;
                if degenerate {
                    let bound = if fold.beta >= x_u { i64::MIN } else { i64::MAX };
                    HwThreshold {
                        bound,
                        negate: false,
                    }
                } else {
                    let v_u = fold.mean + (x_u - fold.beta) * fold.sigma / fold.gamma;
                    HwThreshold::fold(v_u, negate, scale)
                }
            })
            .collect();
        Self { bounds }
    }

    /// Number of boundaries (`2^out_bits − 1`).
    pub fn num_bounds(&self) -> usize {
        self.bounds.len()
    }

    /// Evaluates the quantized activation of an accumulation: the count
    /// of fired boundaries, mapped to the odd level `2·count − L'`.
    pub fn level(&self, acc: i64) -> i64 {
        let fired = self.bounds.iter().filter(|t| t.fires(acc)).count() as i64;
        2 * fired - self.bounds.len() as i64
    }
}

/// Quantizes latent float weights to `bits`-wide odd levels.
///
/// At 1 bit this is the *sign* (non-negative → `+1`), matching
/// `BitMatrix::from_signs` exactly; `quantize_level` agrees except for
/// latents within one f32 ulp below zero, so the corner case is pinned
/// here rather than left to rounding.
fn weight_levels(values: &[f32], bits: usize) -> Vec<i64> {
    if bits == 1 {
        values
            .iter()
            .map(|&x| if x >= 0.0 { 1 } else { -1 })
            .collect()
    } else {
        values.iter().map(|&x| quantize_level(x, bits)).collect()
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum QuantStage {
    /// First engine: Q2.6 fixed-point pixels × multi-plane weights.
    FirstConv {
        weights: PlaneMatrix,
        thresholds: Vec<LevelThresholds>,
        in_channels: usize,
        kernel: usize,
        pool: bool,
    },
    /// Inner multi-precision convolution engine.
    Conv {
        weights: PlaneMatrix,
        thresholds: Vec<LevelThresholds>,
        in_channels: usize,
        kernel: usize,
        pool: bool,
        a_bits: usize,
    },
    /// Inner multi-precision FC engine.
    Fc {
        weights: PlaneMatrix,
        thresholds: Vec<LevelThresholds>,
        a_bits: usize,
    },
    /// Final accumulate-only FC engine.
    Output { weights: PlaneMatrix, a_bits: usize },
}

impl QuantStage {
    fn kind_name(&self) -> &'static str {
        match self {
            QuantStage::FirstConv { .. } => "first_conv",
            QuantStage::Conv { .. } => "conv",
            QuantStage::Fc { .. } => "fc",
            QuantStage::Output { .. } => "output",
        }
    }
}

/// Functional model of a multi-precision integer accelerator: per-layer
/// `(a_bits, w_bits)` quantized inference over bit-plane decomposed
/// weights and level-coded activations.
///
/// # Example
///
/// ```
/// use mp_bnn::{BnnClassifier, FinnTopology};
/// use mp_int::{NetworkPrecision, QuantBnn};
/// use mp_tensor::{init::TensorRng, Shape, Tensor};
///
/// # fn main() -> Result<(), mp_tensor::ShapeError> {
/// let mut rng = TensorRng::seed_from(0);
/// let bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng)?;
/// let layers = bnn.export_latent().len();
/// let precision = NetworkPrecision::uniform(layers, 4, 4).unwrap();
/// let q = QuantBnn::from_classifier(&bnn, precision)?;
/// let scores = q.infer_batch(&Tensor::zeros(Shape::nchw(1, 3, 8, 8)))?;
/// assert_eq!(scores.shape().dims(), &[1, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantBnn {
    topology: FinnTopology,
    precision: NetworkPrecision,
    stages: Vec<QuantStage>,
}

impl QuantBnn {
    /// Quantizes a trained [`BnnClassifier`] to `precision`: latent
    /// weights become plane-packed levels, batch-norm + quantize pairs
    /// become level-threshold ladders.
    ///
    /// Layer `i`'s *output* width is layer `i + 1`'s `a_bits` (the
    /// precision at which the next layer consumes activations); the
    /// output stage produces raw accumulations.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `precision.len()` does not match the
    /// classifier's engine count or the classifier is structurally
    /// inconsistent.
    pub fn from_classifier(
        classifier: &BnnClassifier,
        precision: NetworkPrecision,
    ) -> Result<Self, ShapeError> {
        let latent = classifier.export_latent();
        if latent.len() != precision.len() {
            return Err(ShapeError::new(
                "QuantBnn::from_classifier",
                format!(
                    "precision covers {} layers, network has {} engines",
                    precision.len(),
                    latent.len()
                ),
            ));
        }
        let mut stages = Vec::new();
        for (i, (stage, &spec)) in latent.iter().zip(precision.layers()).enumerate() {
            let w_bits = spec.w_bits();
            let weights = PlaneMatrix::from_levels(
                stage.rows,
                stage.cols,
                &weight_levels(&stage.weights, w_bits),
                w_bits,
            );
            let out_bits = precision.layers().get(i + 1).map(|s| s.a_bits());
            let fold_ladder =
                |bn: &[BnFold], scale: f32| -> Result<Vec<LevelThresholds>, ShapeError> {
                    let out_bits = out_bits.ok_or_else(|| {
                        ShapeError::new(
                            "QuantBnn::from_classifier",
                            format!("engine {i} has an activation but no consumer layer"),
                        )
                    })?;
                    Ok(bn
                        .iter()
                        .map(|f| LevelThresholds::from_fold(f, out_bits, scale))
                        .collect())
                };
            let lw = levels(w_bits) as f32;
            match (&stage.kind, &stage.bn) {
                (
                    LatentKind::Conv {
                        in_channels,
                        kernel,
                        pool,
                        first,
                    },
                    Some(bn),
                ) => {
                    let scale = if *first {
                        INPUT_QUANT_SCALE * lw
                    } else {
                        levels(spec.a_bits()) as f32 * lw
                    };
                    let thresholds = fold_ladder(bn, scale)?;
                    stages.push(if *first {
                        QuantStage::FirstConv {
                            weights,
                            thresholds,
                            in_channels: *in_channels,
                            kernel: *kernel,
                            pool: *pool,
                        }
                    } else {
                        QuantStage::Conv {
                            weights,
                            thresholds,
                            in_channels: *in_channels,
                            kernel: *kernel,
                            pool: *pool,
                            a_bits: spec.a_bits(),
                        }
                    });
                }
                (LatentKind::Fc, Some(bn)) => {
                    let scale = levels(spec.a_bits()) as f32 * lw;
                    stages.push(QuantStage::Fc {
                        weights,
                        thresholds: fold_ladder(bn, scale)?,
                        a_bits: spec.a_bits(),
                    });
                }
                (LatentKind::Output, None) => {
                    stages.push(QuantStage::Output {
                        weights,
                        a_bits: spec.a_bits(),
                    });
                }
                _ => {
                    return Err(ShapeError::new(
                        "QuantBnn::from_classifier",
                        format!("engine {i}: batch-norm presence does not match stage kind"),
                    ));
                }
            }
        }
        Ok(Self {
            topology: classifier.topology().clone(),
            precision,
            stages,
        })
    }

    /// The network topology.
    pub fn topology(&self) -> &FinnTopology {
        &self.topology
    }

    /// The per-layer precision this network was quantized to.
    pub fn precision(&self) -> &NetworkPrecision {
        &self.precision
    }

    /// Integer-to-real score scale of the output stage: `L_a·L_w`.
    /// Raw output accumulations divided by this are comparable across
    /// precisions; at the 1-bit corner the scale is 1.
    pub fn scores_scale(&self) -> f32 {
        let spec = self.precision.layers()[self.precision.len() - 1];
        (levels(spec.a_bits()) * levels(spec.w_bits())) as f32
    }

    /// Per-engine MAC counts (one entry per precision layer), from the
    /// topology's engine records.
    pub fn layer_macs(&self) -> Vec<u64> {
        self.topology
            .engines()
            .iter()
            .map(|e| e.macs_per_image())
            .collect()
    }

    /// Binary plane-MACs per image: each engine's MACs times its
    /// shift-add decomposition width — `w_bits` planes for the
    /// fixed-point first engine (pixels are consumed whole), and
    /// `a_bits·w_bits` plane pairs elsewhere.
    pub fn plane_macs_per_image(&self) -> u64 {
        self.layer_macs()
            .iter()
            .zip(self.precision.layers())
            .enumerate()
            .map(|(i, (&macs, spec))| {
                let planes = if i == 0 {
                    spec.w_bits()
                } else {
                    spec.a_bits() * spec.w_bits()
                };
                macs * planes as u64
            })
            .sum()
    }

    /// MAC-weighted cycle-cost multiplier of this precision relative to
    /// the 1-bit datapath, per `lut` (1.0 at the 1-bit corner).
    pub fn network_cost_factor(&self, lut: &CostLut) -> f64 {
        lut.network_factor(&self.precision, &self.layer_macs())
    }

    /// Runs one `[1, C, H, W]` image, returning the `classes` raw
    /// integer output accumulations (scaled by [`Self::scores_scale`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the image does not match the topology.
    pub fn infer_image(&self, image: &Tensor) -> Result<Vec<i64>, ShapeError> {
        self.infer_image_inner(image, None)
    }

    /// Reference inference for one image, optionally recording one span
    /// per stage (`quant.stage<i>.<kind>`).
    fn infer_image_inner(
        &self,
        image: &Tensor,
        obs: Option<(&dyn Recorder, &[String])>,
    ) -> Result<Vec<i64>, ShapeError> {
        let want = Shape::nchw(
            1,
            self.topology.channels(),
            self.topology.height(),
            self.topology.width(),
        );
        if image.shape() != &want {
            return Err(ShapeError::new(
                "QuantBnn::infer_image",
                format!("expected {want}, got {}", image.shape()),
            ));
        }
        let mut acts: Vec<i64> = Vec::new();
        let mut dims = (
            self.topology.channels(),
            self.topology.height(),
            self.topology.width(),
        );
        let mut scores: Option<Vec<i64>> = None;
        for (si, stage) in self.stages.iter().enumerate() {
            let t0 = obs.map(|_| now_ns());
            match stage {
                QuantStage::FirstConv {
                    weights,
                    thresholds,
                    in_channels,
                    kernel,
                    pool,
                } => {
                    let (c, h, w) = dims;
                    debug_assert_eq!(c, *in_channels);
                    let k = *kernel;
                    let (oh, ow) = (h - k + 1, w - k + 1);
                    let od = weights.num_rows();
                    let q: Vec<i64> = image
                        .iter()
                        .map(|&x| HardwareBnn::quantize_pixel(x))
                        .collect();
                    let mut out = vec![0i64; od * oh * ow];
                    let mut patch = Vec::with_capacity(c * k * k);
                    for oy in 0..oh {
                        for ox in 0..ow {
                            patch.clear();
                            for ch in 0..c {
                                for ky in 0..k {
                                    for kx in 0..k {
                                        patch.push(q[(ch * h + oy + ky) * w + ox + kx]);
                                    }
                                }
                            }
                            for oc in 0..od {
                                // Fixed-point pixels are consumed whole;
                                // only the weights decompose into planes.
                                let mut acc = 0i64;
                                for p in 0..weights.bits() {
                                    let row = weights.plane(p).row(oc);
                                    let mut partial = 0i64;
                                    for (i, &x) in patch.iter().enumerate() {
                                        partial += if row.get(i) { x } else { -x };
                                    }
                                    acc += partial << p;
                                }
                                out[(oc * oh + oy) * ow + ox] = thresholds[oc].level(acc);
                            }
                        }
                    }
                    dims = (od, oh, ow);
                    acts = out;
                    if *pool {
                        let (next, nd) = max_pool_levels(&acts, dims);
                        acts = next;
                        dims = nd;
                    }
                }
                QuantStage::Conv {
                    weights,
                    thresholds,
                    in_channels,
                    kernel,
                    pool,
                    a_bits,
                } => {
                    let (c, h, w) = dims;
                    debug_assert_eq!(c, *in_channels);
                    let k = *kernel;
                    let (oh, ow) = (h - k + 1, w - k + 1);
                    let od = weights.num_rows();
                    let mut out = vec![0i64; od * oh * ow];
                    let mut patch = Vec::with_capacity(c * k * k);
                    let mut accs = Vec::new();
                    for oy in 0..oh {
                        for ox in 0..ow {
                            patch.clear();
                            for ch in 0..c {
                                for ky in 0..k {
                                    for kx in 0..k {
                                        patch.push(acts[(ch * h + oy + ky) * w + ox + kx]);
                                    }
                                }
                            }
                            let pv = PlaneVec::from_levels(&patch, *a_bits);
                            weights.matvec_into(&pv, &mut accs);
                            for (oc, &acc) in accs.iter().enumerate() {
                                out[(oc * oh + oy) * ow + ox] = thresholds[oc].level(acc);
                            }
                        }
                    }
                    dims = (od, oh, ow);
                    acts = out;
                    if *pool {
                        let (next, nd) = max_pool_levels(&acts, dims);
                        acts = next;
                        dims = nd;
                    }
                }
                QuantStage::Fc {
                    weights,
                    thresholds,
                    a_bits,
                } => {
                    let x = PlaneVec::from_levels(&acts, *a_bits);
                    let accs = weights.matvec(&x);
                    acts = accs
                        .iter()
                        .zip(thresholds)
                        .map(|(&a, t)| t.level(a))
                        .collect();
                    dims = (acts.len(), 1, 1);
                }
                QuantStage::Output { weights, a_bits } => {
                    let x = PlaneVec::from_levels(&acts, *a_bits);
                    let accs = weights.matvec(&x);
                    scores = Some(accs.into_iter().take(self.topology.classes()).collect());
                }
            }
            if let (Some((rec, names)), Some(start)) = (obs, t0) {
                rec.record_span(&names[si], start, now_ns());
            }
        }
        scores.ok_or_else(|| ShapeError::new("QuantBnn::infer_image", "no output engine"))
    }

    /// Classifies one image (argmax of the raw scores, first index on
    /// ties).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the image does not match the topology.
    pub fn classify(&self, image: &Tensor) -> Result<usize, ShapeError> {
        let scores = self.infer_image(image)?;
        let mut best = 0;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Runs a `[N, C, H, W]` batch, returning `[N, classes]` float
    /// scores normalised by [`Self::scores_scale`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the batch does not match the topology.
    pub fn infer_batch(&self, images: &Tensor) -> Result<Tensor, ShapeError> {
        self.infer_batch_obs(images, Parallelism::sequential(), &mp_obs::NULL_RECORDER)
    }

    /// [`Self::infer_batch`] sharded across `par` scoped worker threads
    /// with per-stage wall-time spans (`quant.stage<i>.<kind>`) and the
    /// `quant.images` / `quant.plane_macs` counters recorded against
    /// `rec`. Recording is passive: scores are bit-identical to the
    /// unobserved path.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the batch does not match the topology.
    pub fn infer_batch_obs(
        &self,
        images: &Tensor,
        par: Parallelism,
        rec: &dyn Recorder,
    ) -> Result<Tensor, ShapeError> {
        let shape = images.shape();
        let (c, h, w) = (
            self.topology.channels(),
            self.topology.height(),
            self.topology.width(),
        );
        if shape.rank() != 4 || (shape.dim(1), shape.dim(2), shape.dim(3)) != (c, h, w) {
            return Err(ShapeError::new(
                "QuantBnn::infer_batch",
                format!("expected [N,{c},{h},{w}] batch, got {shape}"),
            ));
        }
        let n = shape.dim(0);
        let classes = self.topology.classes();
        let scale = self.scores_scale();
        let names;
        let obs: Option<(&dyn Recorder, &[String])> = if rec.enabled() {
            names = self.stage_span_names();
            rec.add(mp_obs::schema::CTR_QUANT_IMAGES, n as u64);
            rec.add(
                mp_obs::schema::CTR_QUANT_PLANE_MACS,
                self.plane_macs_per_image() * n as u64,
            );
            Some((rec, names.as_slice()))
        } else {
            None
        };
        let infer_range = |range: std::ops::Range<usize>| -> Result<Vec<f32>, ShapeError> {
            let mut out = Vec::with_capacity(range.len() * classes);
            for i in range {
                let img = images.batch_item(i)?;
                let scores = self.infer_image_inner(&img, obs)?;
                out.extend(scores.into_iter().map(|s| s as f32 / scale));
            }
            Ok(out)
        };
        let chunks = par.chunks(n);
        let data = if chunks.len() <= 1 {
            infer_range(0..n)?
        } else {
            let parts: Vec<Result<Vec<f32>, ShapeError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|&(start, end)| scope.spawn(move || infer_range(start..end)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("quantized inference worker panicked"))
                    .collect()
            });
            let mut data = Vec::with_capacity(n * classes);
            for part in parts {
                data.extend(part?);
            }
            data
        };
        Tensor::from_vec(Shape::matrix(n, classes), data)
    }

    /// Stable per-stage span names: `quant.stage<i>.<kind>`.
    fn stage_span_names(&self) -> Vec<String> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, stage)| {
                format!(
                    "{}{i}.{}",
                    mp_obs::schema::SPAN_QUANT_STAGE_PREFIX,
                    stage.kind_name()
                )
            })
            .collect()
    }
}

/// 2×2 max pooling over level-coded activations (the `b`-bit
/// generalisation of OR pooling: `max` over odd levels, which at 1 bit
/// is OR over `{−1, +1}`).
fn max_pool_levels(
    acts: &[i64],
    (c, h, w): (usize, usize, usize),
) -> (Vec<i64>, (usize, usize, usize)) {
    let (oh, ow) = (h / 2, w / 2);
    let mut out = vec![0i64; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut v = i64::MIN;
                for ky in 0..2 {
                    for kx in 0..2 {
                        v = v.max(acts[(ch * h + 2 * oy + ky) * w + 2 * ox + kx]);
                    }
                }
                out[(ch * oh + oy) * ow + ox] = v;
            }
        }
    }
    (out, (c, oh, ow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::PrecisionSpec;
    use mp_nn::train::Model;
    use mp_nn::Mode;
    use mp_tensor::init::TensorRng;

    fn trained_tiny(seed: u64) -> BnnClassifier {
        let mut rng = TensorRng::seed_from(seed);
        let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
        for _ in 0..4 {
            let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
            bnn.forward_mode(&x, Mode::Train).unwrap();
        }
        bnn
    }

    fn layer_count(bnn: &BnnClassifier) -> usize {
        bnn.export_latent().len()
    }

    #[test]
    fn level_thresholds_count_boundaries() {
        let fold = BnFold {
            gamma: 1.0,
            beta: 0.0,
            mean: 0.0,
            sigma: 1.0,
        };
        // 2-bit output, unit scale: boundaries at bn-space −2/3, 0, 2/3.
        let t = LevelThresholds::from_fold(&fold, 2, 3.0);
        assert_eq!(t.num_bounds(), 3);
        assert_eq!(t.level(-3), -3);
        assert_eq!(t.level(-1), -1);
        assert_eq!(t.level(0), 1); // bn(0) = 0 fires the middle bound
        assert_eq!(t.level(3), 3);
    }

    #[test]
    fn one_bit_threshold_matches_hardware_fold() {
        // The single boundary of a 1-bit ladder must be the BNN's
        // folded threshold, bit for bit.
        let folds = [
            BnFold {
                gamma: 0.7,
                beta: -0.3,
                mean: 0.11,
                sigma: 1.9,
            },
            BnFold {
                gamma: -1.3,
                beta: 0.45,
                mean: -2.0,
                sigma: 0.33,
            },
            BnFold {
                gamma: 0.0,
                beta: 0.2,
                mean: 1.0,
                sigma: 1.0,
            },
            BnFold {
                gamma: 0.0,
                beta: -0.2,
                mean: 1.0,
                sigma: 1.0,
            },
        ];
        for fold in &folds {
            for scale in [1.0f32, 64.0] {
                let ladder = LevelThresholds::from_fold(fold, 1, scale);
                let degenerate = fold.gamma.abs() < f32::EPSILON;
                let expect = if degenerate {
                    let t = if fold.beta >= 0.0 {
                        f32::NEG_INFINITY
                    } else {
                        f32::INFINITY
                    };
                    HwThreshold::fold(t, false, scale)
                } else {
                    HwThreshold::fold(
                        fold.mean - fold.beta * fold.sigma / fold.gamma,
                        fold.gamma < 0.0,
                        scale,
                    )
                };
                assert_eq!(ladder.bounds[0], expect, "fold {fold:?} scale {scale}");
            }
        }
    }

    #[test]
    fn one_bit_corner_is_bit_identical_to_hardware() {
        let bnn = trained_tiny(90);
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let precision = NetworkPrecision::one_bit(layer_count(&bnn)).unwrap();
        let q = QuantBnn::from_classifier(&bnn, precision).unwrap();
        assert_eq!(q.scores_scale(), 1.0);
        let mut rng = TensorRng::seed_from(91);
        let batch = rng.normal(Shape::nchw(5, 3, 8, 8), 0.0, 1.0);
        let hw_scores = hw.infer_batch(&batch).unwrap();
        let q_scores = q.infer_batch(&batch).unwrap();
        assert_eq!(hw_scores.shape(), q_scores.shape());
        assert_eq!(hw_scores.as_slice(), q_scores.as_slice());
    }

    #[test]
    fn quantized_inference_shapes_and_determinism() {
        let bnn = trained_tiny(92);
        let n = layer_count(&bnn);
        let mut rng = TensorRng::seed_from(93);
        let batch = rng.normal(Shape::nchw(3, 3, 8, 8), 0.0, 1.0);
        for (a, w) in [(2usize, 2usize), (4, 4), (8, 8), (2, 8)] {
            let precision = NetworkPrecision::uniform(n, a, w).unwrap();
            let q = QuantBnn::from_classifier(&bnn, precision).unwrap();
            let scores = q.infer_batch(&batch).unwrap();
            assert_eq!(scores.shape().dims(), &[3, 10]);
            let again = q.infer_batch(&batch).unwrap();
            assert_eq!(scores.as_slice(), again.as_slice());
        }
    }

    #[test]
    fn parallel_batches_are_bit_identical() {
        let bnn = trained_tiny(94);
        let precision = NetworkPrecision::uniform(layer_count(&bnn), 4, 2).unwrap();
        let q = QuantBnn::from_classifier(&bnn, precision).unwrap();
        let mut rng = TensorRng::seed_from(95);
        let batch = rng.normal(Shape::nchw(7, 3, 8, 8), 0.0, 1.0);
        let reference = q.infer_batch(&batch).unwrap();
        for threads in [2usize, 5] {
            let got = q
                .infer_batch_obs(&batch, Parallelism::new(threads), &mp_obs::NULL_RECORDER)
                .unwrap();
            assert_eq!(reference.as_slice(), got.as_slice());
        }
    }

    #[test]
    fn rejects_layer_count_mismatch_and_bad_shapes() {
        let bnn = trained_tiny(96);
        let precision = NetworkPrecision::uniform(3, 4, 4).unwrap();
        assert!(QuantBnn::from_classifier(&bnn, precision).is_err());
        let good = NetworkPrecision::uniform(layer_count(&bnn), 4, 4).unwrap();
        let q = QuantBnn::from_classifier(&bnn, good).unwrap();
        assert!(q
            .infer_image(&Tensor::zeros(Shape::nchw(1, 3, 16, 16)))
            .is_err());
        assert!(q
            .infer_batch(&Tensor::zeros(Shape::nchw(2, 1, 8, 8)))
            .is_err());
    }

    #[test]
    fn plane_macs_scale_with_precision() {
        let bnn = trained_tiny(97);
        let n = layer_count(&bnn);
        let one = QuantBnn::from_classifier(&bnn, NetworkPrecision::one_bit(n).unwrap()).unwrap();
        let wide =
            QuantBnn::from_classifier(&bnn, NetworkPrecision::uniform(n, 8, 8).unwrap()).unwrap();
        let macs: u64 = one.layer_macs().iter().sum();
        assert_eq!(one.plane_macs_per_image(), macs);
        assert!(wide.plane_macs_per_image() > 32 * one.plane_macs_per_image());
        // Cost factors order the same way.
        let lut = CostLut::mpic();
        assert_eq!(one.network_cost_factor(&lut), 1.0);
        assert!(wide.network_cost_factor(&lut) > 2.0);
    }

    #[test]
    fn spans_and_counters_are_recorded() {
        let bnn = trained_tiny(98);
        let precision = NetworkPrecision::uniform(layer_count(&bnn), 2, 2).unwrap();
        let q = QuantBnn::from_classifier(&bnn, precision).unwrap();
        let mut rng = TensorRng::seed_from(99);
        let batch = rng.normal(Shape::nchw(2, 3, 8, 8), 0.0, 1.0);
        let rec = mp_obs::SharedRecorder::new();
        q.infer_batch_obs(&batch, Parallelism::sequential(), &rec)
            .unwrap();
        let report = rec.report();
        let span_names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(span_names
            .iter()
            .any(|n| n.starts_with(mp_obs::schema::SPAN_QUANT_STAGE_PREFIX)));
        let images = report
            .counters
            .iter()
            .find(|c| c.name == mp_obs::schema::CTR_QUANT_IMAGES)
            .expect("images counter");
        assert_eq!(images.value, 2);
        let macs = report
            .counters
            .iter()
            .find(|c| c.name == mp_obs::schema::CTR_QUANT_PLANE_MACS)
            .expect("plane macs counter");
        assert_eq!(macs.value, 2 * q.plane_macs_per_image());
    }

    #[test]
    fn serde_round_trip_preserves_scores() {
        let bnn = trained_tiny(100);
        let precision = NetworkPrecision::uniform(layer_count(&bnn), 2, 4).unwrap();
        let q = QuantBnn::from_classifier(&bnn, precision).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantBnn = serde_json::from_str(&json).unwrap();
        let mut rng = TensorRng::seed_from(101);
        let batch = rng.normal(Shape::nchw(2, 3, 8, 8), 0.0, 1.0);
        assert_eq!(
            q.infer_batch(&batch).unwrap().as_slice(),
            back.infer_batch(&batch).unwrap().as_slice()
        );
    }

    #[test]
    fn mixed_precision_per_layer_is_respected() {
        let bnn = trained_tiny(102);
        let n = layer_count(&bnn);
        let mut layers = vec![PrecisionSpec::try_new(8, 2).unwrap()];
        for i in 1..n {
            let spec = if i % 2 == 0 {
                PrecisionSpec::try_new(2, 4).unwrap()
            } else {
                PrecisionSpec::try_new(4, 2).unwrap()
            };
            layers.push(spec);
        }
        let precision = NetworkPrecision::try_new(layers).unwrap();
        let q = QuantBnn::from_classifier(&bnn, precision).unwrap();
        let mut rng = TensorRng::seed_from(103);
        let batch = rng.normal(Shape::nchw(2, 3, 8, 8), 0.0, 1.0);
        let scores = q.infer_batch(&batch).unwrap();
        assert_eq!(scores.shape().dims(), &[2, 10]);
    }
}
