//! MPIC-style cycle-cost lookup table for multi-precision MACs.
//!
//! A multi-precision integer core (MPIC, Ottavi et al., "A Mixed-
//! Precision RISC-V Processor for Extreme-Edge DNN Inference") executes
//! an `(a_bits × w_bits)` MAC as a sequence of subword operations, so
//! its MACs-per-cycle rate depends on both operand widths. [`CostLut`]
//! tabulates that rate per `(a_bits, w_bits)` pair, and
//! [`CostLut::cost_factor`] converts it into a multiplier on the 1-bit
//! engine cycles of mp-fpga's eq. (3)/(4) model: a quantized engine's
//! modeled cycles are `engine_cycles(spec, p, s) · cost_factor(a, w)`,
//! which is what prices quantized configurations in
//! `modeled_batch_time`.

use std::fmt;

use mp_fpga::cycle_model::engine_cycles;
use serde::{Deserialize, Error, Serialize, Value};

use mp_bnn::EngineSpec;

use crate::precision::{NetworkPrecision, PrecisionSpec, SUPPORTED_BITS};

/// A [`CostLut`] lookup at widths the table does not tabulate.
///
/// The table covers `(a_bits, w_bits) ∈ {1, 2, 4, 8}²`; any other pair
/// has no measured rate, and inventing one would silently misprice a
/// configuration. [`CostLut::try_macs_per_cycle`] returns this typed
/// error; the panicking [`CostLut::macs_per_cycle`] stays for callers
/// holding already-validated [`PrecisionSpec`] widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostError {
    /// The requested activation width.
    pub a_bits: usize,
    /// The requested weight width.
    pub w_bits: usize,
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no tabulated MAC rate for (a_bits, w_bits) = ({}, {}); \
             supported widths are {SUPPORTED_BITS:?}",
            self.a_bits, self.w_bits
        )
    }
}

impl std::error::Error for CostError {}

/// Throughput table: MACs per cycle per `(a_bits, w_bits)` pair, for
/// widths in {1, 2, 4, 8}.
#[derive(Debug, Clone, PartialEq)]
pub struct CostLut {
    /// `rates[ai][wi]` with index order 1 → 0, 2 → 1, 4 → 2, 8 → 3;
    /// activation width selects the row.
    rates: [[f64; 4]; 4],
}

// Manual impl because the serde stub serialises `Vec<T>` but not
// fixed-size arrays; the shape matches the checked `Deserialize` below.
impl Serialize for CostLut {
    fn to_value(&self) -> Value {
        let rows: Vec<Vec<f64>> = self.rates.iter().map(|row| row.to_vec()).collect();
        Value::Map(vec![("rates".to_owned(), rows.to_value())])
    }
}

impl<'de> Deserialize<'de> for CostLut {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let rows = Vec::<Vec<f64>>::from_value(value.get_field("rates")?)?;
        if rows.len() != 4 || rows.iter().any(|r| r.len() != 4) {
            return Err(Error::custom("CostLut: rates must be 4×4"));
        }
        let mut rates = [[0.0f64; 4]; 4];
        for (i, row) in rows.iter().enumerate() {
            for (j, &rate) in row.iter().enumerate() {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(Error::custom(format!(
                        "CostLut: rate[{i}][{j}] = {rate} must be positive and finite"
                    )));
                }
                rates[i][j] = rate;
            }
        }
        Ok(Self { rates })
    }
}

/// Table index of a supported bit width.
fn idx(bits: usize) -> Option<usize> {
    match bits {
        1 => Some(0),
        2 => Some(1),
        4 => Some(2),
        8 => Some(3),
        _ => None,
    }
}

impl CostLut {
    /// The measured MPIC rates (MACs/cycle on the 4-lane dot-product
    /// unit, activation width selecting the row), extended to the 1-bit
    /// edge of the table.
    ///
    /// The 2/4/8-bit block is Table MPIC reports; the 1-bit row and
    /// column are a documented extrapolation (each halving of one
    /// operand's width doubles the subword parallelism of that
    /// operand's lanes): `rate(1, w) = 2·rate(2, w)`,
    /// `rate(a, 1) = 2·rate(a, 2)`, and `rate(1, 1) = 4·rate(2, 2)`.
    /// With that anchor, `cost_factor(1, 1) = 1`, so the 1-bit corner's
    /// modeled throughput is exactly the unmodified eq. (3)/(4) model.
    pub fn mpic() -> Self {
        Self {
            rates: [
                // w_bits:   1     2     4     8
                /* a=1 */
                [26.0, 13.0, 8.0, 4.4],
                /* a=2 */ [13.0, 6.5, 4.0, 2.2],
                /* a=4 */ [7.8, 3.9, 3.5, 2.1],
                /* a=8 */ [5.0, 2.5, 2.3, 2.1],
            ],
        }
    }

    /// MACs per cycle at `(a_bits, w_bits)`, or a typed [`CostError`]
    /// for widths outside {1, 2, 4, 8}.
    ///
    /// # Errors
    ///
    /// Returns [`CostError`] when either width is untabulated.
    pub fn try_macs_per_cycle(&self, a_bits: usize, w_bits: usize) -> Result<f64, CostError> {
        match (idx(a_bits), idx(w_bits)) {
            (Some(ai), Some(wi)) => Ok(self.rates[ai][wi]),
            _ => Err(CostError { a_bits, w_bits }),
        }
    }

    /// MACs per cycle at `(a_bits, w_bits)`.
    ///
    /// # Panics
    ///
    /// Panics if either width is outside {1, 2, 4, 8}; use
    /// [`Self::try_macs_per_cycle`] to handle raw widths gracefully.
    pub fn macs_per_cycle(&self, a_bits: usize, w_bits: usize) -> f64 {
        match self.try_macs_per_cycle(a_bits, w_bits) {
            Ok(rate) => rate,
            Err(e) => panic!("{e}"),
        }
    }

    /// Cycle-cost multiplier of `(a_bits, w_bits)` MACs relative to the
    /// 1-bit XNOR datapath: `rate(1,1) / rate(a,w) ≥ 1`, equal to 1 at
    /// the 1-bit corner.
    pub fn cost_factor(&self, spec: PrecisionSpec) -> f64 {
        self.macs_per_cycle(1, 1) / self.macs_per_cycle(spec.a_bits(), spec.w_bits())
    }

    /// Cycle-cost multiplier from raw widths, with a typed error for
    /// untabulated pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CostError`] when either width is untabulated.
    pub fn try_cost_factor(&self, a_bits: usize, w_bits: usize) -> Result<f64, CostError> {
        Ok(self.try_macs_per_cycle(1, 1)? / self.try_macs_per_cycle(a_bits, w_bits)?)
    }

    /// One layer's cycle multiplier against its own baseline: layer 0
    /// is priced against `(a_bits, 1)` (fixed-point pixels × binary
    /// weights, the shipped FINN first stage), inner layers against the
    /// `(1, 1)` XNOR datapath — the per-layer term that
    /// [`Self::network_factor`] MAC-weights.
    pub fn layer_factor(&self, layer: usize, spec: PrecisionSpec) -> f64 {
        let baseline = if layer == 0 {
            self.macs_per_cycle(spec.a_bits(), 1)
        } else {
            self.macs_per_cycle(1, 1)
        };
        baseline / self.macs_per_cycle(spec.a_bits(), spec.w_bits())
    }

    /// Modeled cycles of one quantized engine: the eq. (3)/(4) 1-bit
    /// cycle count at folding `(p, s)`, scaled by the precision's cost
    /// factor.
    pub fn quant_engine_cycles(
        &self,
        engine: &EngineSpec,
        p: usize,
        s: usize,
        precision: PrecisionSpec,
    ) -> f64 {
        engine_cycles(engine, p, s) as f64 * self.cost_factor(precision)
    }

    /// MAC-weighted network-level cost factor: each layer's slowdown
    /// relative to its own 1-bit-corner configuration, weighted by its
    /// share of the network's MACs. This is the single multiplier the
    /// pipeline applies to the 1-bit modeled batch time.
    ///
    /// The baseline is per-layer because the first engine's 8-bit
    /// pixel MACs are already priced into the eq. (3)/(4) model: layer
    /// 0 is measured against `(8, 1)` (fixed-point pixels × binary
    /// weights, the shipped FINN first stage), inner layers against
    /// `(1, 1)`. At [`NetworkPrecision::one_bit`] every layer sits on
    /// its baseline, so the factor is exactly 1 and the 1-bit corner's
    /// modeled throughput is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `macs_per_layer.len() != precision.len()`.
    pub fn network_factor(&self, precision: &NetworkPrecision, macs_per_layer: &[u64]) -> f64 {
        assert_eq!(
            macs_per_layer.len(),
            precision.len(),
            "one MAC count per precision layer"
        );
        let total: u64 = macs_per_layer.iter().sum();
        if total == 0 {
            return 1.0;
        }
        precision
            .layers()
            .iter()
            .zip(macs_per_layer)
            .enumerate()
            .map(|(i, (&spec, &macs))| self.layer_factor(i, spec) * macs as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Every `(a_bits, w_bits, macs_per_cycle)` entry, row-major.
    pub fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(16);
        for (ai, &a) in SUPPORTED_BITS.iter().enumerate() {
            for (wi, &w) in SUPPORTED_BITS.iter().enumerate() {
                out.push((a, w, self.rates[ai][wi]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bit_corner_costs_nothing_extra() {
        let lut = CostLut::mpic();
        let one = PrecisionSpec::try_new(1, 1).unwrap();
        assert_eq!(lut.cost_factor(one), 1.0);
    }

    #[test]
    fn wider_operands_cost_more() {
        let lut = CostLut::mpic();
        for (a, w, rate) in lut.entries() {
            assert!(rate > 0.0);
            let factor = lut.cost_factor(PrecisionSpec::try_new(a, w).unwrap());
            assert!(factor >= 1.0, "factor({a},{w}) = {factor}");
        }
        // Monotone in weight width along the 8-bit activation row.
        let a8 = |w: usize| lut.macs_per_cycle(8, w);
        assert!(a8(1) > a8(2) && a8(2) > a8(4) && a8(4) >= a8(8));
    }

    #[test]
    fn mpic_block_matches_published_rates() {
        let lut = CostLut::mpic();
        assert_eq!(lut.macs_per_cycle(2, 2), 6.5);
        assert_eq!(lut.macs_per_cycle(2, 4), 4.0);
        assert_eq!(lut.macs_per_cycle(4, 4), 3.5);
        assert_eq!(lut.macs_per_cycle(8, 8), 2.1);
        assert_eq!(lut.macs_per_cycle(8, 2), 2.5);
    }

    #[test]
    fn network_factor_is_mac_weighted_against_per_layer_baselines() {
        let lut = CostLut::mpic();
        let net = NetworkPrecision::uniform(2, 8, 8).unwrap();
        // Layer 0 (a8w8) is priced against the shipped (8,1) first
        // stage, layer 1 against the (1,1) XNOR datapath.
        let f = lut.network_factor(&net, &[100, 300]);
        let expect = (100.0 * (lut.macs_per_cycle(8, 1) / lut.macs_per_cycle(8, 8))
            + 300.0 * (lut.macs_per_cycle(1, 1) / lut.macs_per_cycle(8, 8)))
            / 400.0;
        assert!((f - expect).abs() < 1e-12);
        // 1-bit network: every layer on its baseline → exactly 1,
        // regardless of the MAC distribution.
        let one = NetworkPrecision::one_bit(2).unwrap();
        assert_eq!(lut.network_factor(&one, &[50, 100]), 1.0);
        assert_eq!(lut.network_factor(&one, &[0, 0]), 1.0);
    }

    #[test]
    fn quant_cycles_scale_engine_cycles() {
        let lut = CostLut::mpic();
        let engines = mp_bnn::FinnTopology::paper().engines();
        let spec = PrecisionSpec::try_new(4, 4).unwrap();
        let base = engine_cycles(&engines[1], 1, 1) as f64;
        let quant = lut.quant_engine_cycles(&engines[1], 1, 1, spec);
        assert!((quant / base - lut.cost_factor(spec)).abs() < 1e-12);
    }

    #[test]
    fn unsupported_activation_width_is_a_typed_error() {
        let lut = CostLut::mpic();
        for a in [0usize, 3, 5, 16] {
            let err = lut.try_macs_per_cycle(a, 2).unwrap_err();
            assert_eq!(
                err,
                CostError {
                    a_bits: a,
                    w_bits: 2
                }
            );
            assert!(err.to_string().contains(&format!("({a}, 2)")), "{err}");
        }
    }

    #[test]
    fn unsupported_weight_width_is_a_typed_error() {
        let lut = CostLut::mpic();
        for w in [0usize, 3, 6, 9] {
            let err = lut.try_macs_per_cycle(4, w).unwrap_err();
            assert_eq!(
                err,
                CostError {
                    a_bits: 4,
                    w_bits: w
                }
            );
        }
    }

    #[test]
    fn both_widths_unsupported_reports_the_pair() {
        let lut = CostLut::mpic();
        let err = lut.try_macs_per_cycle(7, 0).unwrap_err();
        assert_eq!(
            err,
            CostError {
                a_bits: 7,
                w_bits: 0
            }
        );
        assert!(lut.try_cost_factor(7, 0).is_err());
    }

    #[test]
    fn try_variants_agree_with_panicking_lookups_on_valid_widths() {
        let lut = CostLut::mpic();
        for (a, w, rate) in lut.entries() {
            assert_eq!(lut.try_macs_per_cycle(a, w).unwrap(), rate);
            let spec = PrecisionSpec::try_new(a, w).unwrap();
            assert_eq!(lut.try_cost_factor(a, w).unwrap(), lut.cost_factor(spec));
        }
    }

    #[test]
    #[should_panic(expected = "no tabulated MAC rate")]
    fn panicking_lookup_names_the_bad_pair() {
        CostLut::mpic().macs_per_cycle(3, 2);
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let lut = CostLut::mpic();
        let round = CostLut::from_value(&lut.to_value()).unwrap();
        assert_eq!(round, lut);
        // Forged non-positive rate is rejected.
        let mut value = lut.to_value();
        if let Value::Map(entries) = &mut value {
            for (key, field) in entries.iter_mut() {
                if key == "rates" {
                    if let Value::Seq(rows) = field {
                        if let Value::Seq(cells) = &mut rows[0] {
                            cells[0] = Value::Float(0.0);
                        }
                    }
                }
            }
        }
        assert!(CostLut::from_value(&value).is_err());
    }
}
