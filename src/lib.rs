//! # multiprec
//!
//! A full Rust reproduction of *Amiri, Hosseinabady, McIntosh-Smith,
//! Nunez-Yanez — "Multi-Precision Convolutional Neural Networks on
//! Heterogeneous Hardware", DATE 2018*.
//!
//! The system couples a binarised CNN (high throughput, mapped to an
//! FPGA model) with a floating-point CNN (high accuracy, mapped to a CPU
//! model) through a trained decision-making unit that flags
//! low-confidence classifications for re-inference.
//!
//! This façade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `mp-tensor` | dense f32 tensors, GEMM, im2col |
//! | [`nn`] | `mp-nn` | float CNN layers, training, cost accounting |
//! | [`bnn`] | `mp-bnn` | binarised network, XNOR-popcount hardware view |
//! | [`fpga`] | `mp-fpga` | FINN accelerator model: cycles, folding, BRAM, streaming |
//! | [`dataset`] | `mp-dataset` | synthetic CIFAR-10 stand-in + real loader |
//! | [`host`] | `mp-host` | Caffe model zoo + ARM Cortex-A9 cost model |
//! | [`int`] | `mp-int` | multi-precision integer path: 2/4/8-bit quantized inference + MPIC cost LUT |
//! | [`core`] | `mp-core` | DMU, multi-precision pipeline, experiments |
//! | [`obs`] | `mp-obs` | zero-dependency tracing/metrics recorder + JSON report |
//! | [`verify`] | `mp-verify` | static design-rule checker + abstract interpretation (`mp-lint`), feasibility oracle |
//! | [`autotune`] | `mp-autotune` | folding × precision design-space autotuner over the feasibility oracle |
//! | [`serve`] | `mp-serve` | request-level serving: admission queue, dynamic batcher, latency accounting |
//! | [`fleet`] | `mp-fleet` | fault-tolerant multi-replica serving: health-aware routing, circuit breakers, hedged retries, replica failure/recovery |
//!
//! # Quickstart
//!
//! ```no_run
//! use multiprec::core::experiment::{ExperimentConfig, TrainedSystem};
//! use multiprec::host::zoo::ModelId;
//! use multiprec::obs::SharedRecorder;
//!
//! # fn main() -> Result<(), multiprec::core::CoreError> {
//! // Train the whole system (BNN + DMU + host models) on synthetic data.
//! let system = TrainedSystem::prepare(&ExperimentConfig::fast_profile(2018))?;
//! // Run the Model A + FINN pipeline at paper-scale timing, recording
//! // per-stage spans, counters and events as it goes.
//! let rec = SharedRecorder::new();
//! let opts = system.run_options(ModelId::A)?.with_recorder(&rec);
//! let result = system.execute(ModelId::A, &opts)?;
//! println!(
//!     "BNN {:.1}% → multi-precision {:.1}% at {:.1} img/s ({} reruns)",
//!     100.0 * result.bnn_accuracy,
//!     100.0 * result.accuracy,
//!     result.modeled_images_per_sec,
//!     result.rerun_count,
//! );
//! // The aggregated report serialises to results/obs_*.json.
//! let report = rec.report();
//! println!("{} spans recorded", report.spans.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub use mp_autotune as autotune;
pub use mp_bnn as bnn;
pub use mp_core as core;
pub use mp_dataset as dataset;
pub use mp_fleet as fleet;
pub use mp_fpga as fpga;
pub use mp_host as host;
pub use mp_int as int;
pub use mp_nn as nn;
pub use mp_obs as obs;
pub use mp_serve as serve;
pub use mp_tensor as tensor;
pub use mp_verify as verify;
