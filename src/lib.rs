//! # multiprec
//!
//! A full Rust reproduction of *Amiri, Hosseinabady, McIntosh-Smith,
//! Nunez-Yanez — "Multi-Precision Convolutional Neural Networks on
//! Heterogeneous Hardware", DATE 2018*.
//!
//! The system couples a binarised CNN (high throughput, mapped to an
//! FPGA model) with a floating-point CNN (high accuracy, mapped to a CPU
//! model) through a trained decision-making unit that flags
//! low-confidence classifications for re-inference.
//!
//! This façade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `mp-tensor` | dense f32 tensors, GEMM, im2col |
//! | [`nn`] | `mp-nn` | float CNN layers, training, cost accounting |
//! | [`bnn`] | `mp-bnn` | binarised network, XNOR-popcount hardware view |
//! | [`fpga`] | `mp-fpga` | FINN accelerator model: cycles, folding, BRAM, streaming |
//! | [`dataset`] | `mp-dataset` | synthetic CIFAR-10 stand-in + real loader |
//! | [`host`] | `mp-host` | Caffe model zoo + ARM Cortex-A9 cost model |
//! | [`core`] | `mp-core` | DMU, multi-precision pipeline, experiments |
//! | [`verify`] | `mp-verify` | static design-rule checker + abstract interpretation (`mp-lint`) |
//!
//! # Quickstart
//!
//! ```no_run
//! use multiprec::core::experiment::{ExperimentConfig, TrainedSystem};
//! use multiprec::host::zoo::ModelId;
//!
//! # fn main() -> Result<(), multiprec::core::CoreError> {
//! // Train the whole system (BNN + DMU + host models) on synthetic data.
//! let mut system = TrainedSystem::prepare(&ExperimentConfig::fast_profile(2018))?;
//! // Run the Model A + FINN pipeline at paper-scale timing.
//! let timing = system.paper_timing(ModelId::A)?;
//! let result = system.run_pipeline(ModelId::A, &timing)?;
//! println!(
//!     "BNN {:.1}% → multi-precision {:.1}% at {:.1} img/s",
//!     100.0 * result.bnn_accuracy,
//!     100.0 * result.accuracy,
//!     result.modeled_images_per_sec,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mp_bnn as bnn;
pub use mp_core as core;
pub use mp_dataset as dataset;
pub use mp_fpga as fpga;
pub use mp_host as host;
pub use mp_nn as nn;
pub use mp_tensor as tensor;
pub use mp_verify as verify;
