//! Offline stub of the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with the subset this workspace uses —
//! [`channel::unbounded`], [`channel::bounded`], `send`/`try_send`/`recv`
//! and receiver iteration — implemented over `std::sync::mpsc`. The
//! bounded flavour maps onto `mpsc::sync_channel`, which has the same
//! rendezvous-free, block-when-full semantics the pipeline relies on.

#![forbid(unsafe_code)]

/// Multi-producer channels with bounded and unbounded flavours.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is accepted (or the channel disconnects).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }

        /// Non-blocking send; fails with [`TrySendError::Full`] at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s
                    .send(msg)
                    .map_err(|mpsc::SendError(m)| TrySendError::Disconnected(m)),
                Tx::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                    mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Iterates over messages, ending when all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
            drop(tx);
            let rest: Vec<u32> = rx.iter().collect();
            assert_eq!(rest, vec![2, 3]);
        }

        #[test]
        fn disconnected_detected() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
            assert!(tx.send(9).is_err());
        }
    }
}
