//! Offline stub of the `criterion` crate.
//!
//! Implements the benchmarking surface this workspace's `benches/` use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`] and the `criterion_group!`/
//! `criterion_main!` macros — with a deliberately cheap measurement loop:
//! one warm-up call plus a handful of timed iterations, reporting the
//! fastest. That keeps `cargo test` (which executes `harness = false`
//! bench targets) fast while still producing meaningful ns/iter numbers
//! when run directly via `cargo bench`.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque hint preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    best_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping the fastest of a few short passes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(routine());
            let ns = start.elapsed().as_nanos() as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns = best;
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { best_ns: 0.0 };
        f(&mut bencher);
        println!("bench {id}: {:.0} ns/iter (best of 3)", bencher.best_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            criterion: self,
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.prefix, id);
        self.criterion.bench_function(name, f);
        self
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in
/// `criterion_group!(benches, bench_a, bench_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.bench_function("mul", |b| b.iter(|| black_box(6u64) * 7));
        group.finish();
    }

    criterion_group!(example_group, bench_example);

    #[test]
    fn harness_runs() {
        example_group();
    }
}
