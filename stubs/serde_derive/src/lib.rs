//! Offline stub of `serde_derive`.
//!
//! Generates [`serde::Serialize`]/[`serde::Deserialize`] impls for the
//! shapes this workspace actually derives on: non-generic structs (named,
//! tuple or unit) and non-generic enums whose variants are unit, tuple or
//! struct-like. Parsing is done directly on the token stream — no `syn`
//! or `quote`, so the macro compiles with zero dependencies.
//!
//! Formats match real serde's JSON conventions: structs become objects,
//! unit variants become strings, data-carrying variants become
//! externally-tagged single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Input {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive does not support generic types (deriving on `{name}`)");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: count_top_level_items(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("serde stub derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde stub derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde stub derive: cannot derive on `{other}`"),
    }
}

/// Advances past outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a named-struct body stream.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, found {other}"),
        };
        fields.push(field);
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde stub derive: expected `:` after field name"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Counts comma-separated items at the top level of a token stream.
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Extracts variants from an enum body stream.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_items(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::TupleStruct { name, arity } => {
            let items = (0..*arity)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn serialize_variant_arm(name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.kind {
        VariantKind::Unit => format!(
            "{name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Named(fields) => {
            let binders = fields.join(", ");
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Map(::std::vec![{entries}]))]),"
            )
        }
        VariantKind::Tuple(arity) => {
            let binders = (0..*arity)
                .map(|idx| format!("__f{idx}"))
                .collect::<Vec<_>>()
                .join(", ");
            let payload = if *arity == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items = (0..*arity)
                    .map(|idx| format!("::serde::Serialize::to_value(__f{idx})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Seq(::std::vec![{items}])")
            };
            format!(
                "{name}::{vname}({binders}) => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), {payload})]),"
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__value.get_field(\"{f}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            (name, format!("::std::result::Result::Ok(Self {{\n{inits}\n}})"))
        }
        Input::TupleStruct { name, arity } => {
            let items = (0..*arity)
                .map(|idx| {
                    format!("::serde::Deserialize::from_value(&__items[{idx}])?")
                })
                .collect::<Vec<_>>()
                .join(", ");
            (
                name,
                format!(
                    "let __items = __value.as_seq()?;\n\
                     if __items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple-struct arity\"));\n\
                     }}\n\
                     ::std::result::Result::Ok(Self({items}))"
                ),
            )
        }
        Input::UnitStruct { name } => {
            (name, "::std::result::Result::Ok(Self)".to_string())
        }
        Input::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| deserialize_variant_arm(v))
                .collect::<Vec<_>>()
                .join("\n");
            (
                name,
                format!(
                    "let (__variant, __payload) = __value.variant()?;\n\
                     match __variant {{\n{arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_variant_arm(variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.kind {
        VariantKind::Unit => format!(
            "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}),"
        ),
        VariantKind::Named(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__inner.get_field(\"{f}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "\"{vname}\" => {{\n\
                     let __inner = __payload.ok_or_else(|| ::serde::Error::custom(\
                         \"variant `{vname}` expects fields\"))?;\n\
                     ::std::result::Result::Ok(Self::{vname} {{\n{inits}\n}})\n\
                 }}"
            )
        }
        VariantKind::Tuple(arity) => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok(Self::{vname}(\
                     ::serde::Deserialize::from_value(__inner)?))"
                )
            } else {
                let items = (0..*arity)
                    .map(|idx| {
                        format!("::serde::Deserialize::from_value(&__items[{idx}])?")
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "let __items = __inner.as_seq()?;\n\
                     if __items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong variant arity\"));\n\
                     }}\n\
                     ::std::result::Result::Ok(Self::{vname}({items}))"
                )
            };
            format!(
                "\"{vname}\" => {{\n\
                     let __inner = __payload.ok_or_else(|| ::serde::Error::custom(\
                         \"variant `{vname}` expects data\"))?;\n\
                     {body}\n\
                 }}"
            )
        }
    }
}
