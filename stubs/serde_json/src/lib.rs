//! Offline stub of `serde_json`.
//!
//! Renders the serde stub's [`serde::Value`] tree to real JSON text and
//! parses it back: [`to_string`], [`to_string_pretty`] and [`from_str`]
//! are lossless for every type in this workspace (integers stay exact,
//! floats print shortest-round-trip representations).

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error produced while serialising or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serialises `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn render_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's Display prints the shortest string that round-trips.
        let text = f.to_string();
        out.push_str(&text);
        // Keep a float marker so whole values stay distinguishable; the
        // deserialiser accepts integers for floats either way.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; serde_json emits null.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain chunk.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let v: u64 = u64::MAX;
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), v);

        let f: f32 = 0.1;
        let text = to_string(&f).unwrap();
        assert_eq!(from_str::<f32>(&text).unwrap(), f);

        let s = String::from("line\n\"quoted\"\\slash\u{1}");
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<Option<i32>> = vec![Some(-3), None, Some(7)];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<i32>>>(&text).unwrap(), v);

        let nested: Vec<(f64, bool)> = vec![(1.25, true), (-0.5, false)];
        let text = to_string_pretty(&nested).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<(f64, bool)>>(&text).unwrap(), nested);
    }

    #[test]
    fn whole_floats_keep_marker() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<f64>(&text).unwrap(), 2.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("flase").is_err());
        assert!(from_str::<Vec<i32>>("[1, 2").is_err());
        assert!(from_str::<i32>("1 tail").is_err());
    }
}
