//! Offline stub of the `serde` crate.
//!
//! Real serde abstracts over data formats with `Serializer`/`Deserializer`
//! visitors; this workspace only ever serialises to and from JSON via
//! `serde_json`, so the stub collapses the abstraction to a single
//! in-memory [`Value`] tree. [`Serialize`] renders a type into a `Value`,
//! [`Deserialize`] rebuilds the type from one, and the `serde_json` stub
//! handles text. The derive macros (re-exported from `serde_derive`)
//! generate real field-by-field implementations, so round-trips are
//! lossless for every type in this repository.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON-shaped value: the single interchange format of the stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction or exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

/// Error produced during (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Short type tag for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Looks up a struct field in an object value.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Decomposes an externally-tagged enum value into `(variant, payload)`.
    ///
    /// `"Name"` is a unit variant; `{"Name": payload}` carries data.
    pub fn variant(&self) -> Result<(&str, Option<&Value>), Error> {
        match self {
            Value::Str(name) => Ok((name, None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::custom(format!(
                "expected enum variant (string or single-key object), found {}",
                other.kind()
            ))),
        }
    }

    /// Views the value as an array.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the interchange value.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
///
/// The lifetime parameter mirrors real serde's `Deserialize<'de>` so that
/// derive output and trait bounds written against upstream serde compile
/// unchanged; the stub never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the interchange value.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Convenience alias matching serde's owned-deserialisation bound.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for i64")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // serde_json maps non-finite floats to null; accept it back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Widening f32 -> f64 is exact, so the round-trip is lossless.
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impl {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq()?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, found array of {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

tuple_impl!(1 => A.0);
tuple_impl!(2 => A.0, B.1);
tuple_impl!(3 => A.0, B.1, C.2);
tuple_impl!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert_eq!(
            Option::<usize>::from_value(&None::<usize>.to_value()).unwrap(),
            None
        );
        let v: Vec<(f32, bool)> = vec![(1.5, true), (-2.0, false)];
        let back: Vec<(f32, bool)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn field_lookup_and_variants() {
        let obj = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(obj.get_field("a").unwrap(), &Value::Int(1));
        assert!(obj.get_field("b").is_err());

        let unit = Value::Str("Up".into());
        assert_eq!(unit.variant().unwrap(), ("Up", None));
        let tagged = Value::Map(vec![("Down".into(), Value::Int(3))]);
        assert_eq!(tagged.variant().unwrap(), ("Down", Some(&Value::Int(3))));
    }
}
