//! Offline stub of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with per-block [`ProptestConfig`], `ident in
//! strategy` arguments, [`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assume!`], [`any`], range strategies, tuple strategies,
//! [`collection::vec`] and [`option::of`].
//!
//! Sampling is deterministic: each test derives its RNG seed from its own
//! name, so failures reproduce exactly across runs. There is no shrinking
//! — failing inputs are reported as-is — which is an acceptable trade for
//! a dependency-free implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is skipped.
    Reject(String),
}

/// Deterministic SplitMix64 source used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test's name, so every run of that test
    /// sees the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Generators of test inputs.
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_strategy!(i64, i32, i16, i8);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// Types with a canonical "anything goes" strategy, mirroring `Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bounded arbitrary floats: plenty for numeric property tests
        // without the NaN/inf edge cases real proptest filters anyway.
        (rng.unit_f64() as f32 - 0.5) * 2e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, as in `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.index(span.max(1));
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len)` or `vec(element, lo..hi)`: vectors of sampled
    /// elements with sampled length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s of an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // 25% None, matching real proptest's default weighting.
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `of(inner)`: sometimes `None`, otherwise `Some(sample)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declares property tests; see the crate docs for the accepted grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                let mut __accepted = 0u32;
                let mut __rejected = 0u32;
                while __accepted < __cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __cfg.cases.saturating_mul(64).saturating_add(1024),
                                "{}: too many cases rejected by prop_assume!",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("{} (case {}): {}", stringify!($name), __accepted, __msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}` ({:?} vs {:?})",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "{} ({:?} vs {:?})",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respected(a in 3usize..9, b in -2.0f32..2.0, c in any::<bool>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(c || !c);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_and_options(
            pair in (1usize..4, any::<bool>()),
            opt in crate::option::of(0u32..7),
        ) {
            prop_assert!((1..4).contains(&pair.0));
            if let Some(x) = opt {
                prop_assert!(x < 7);
            }
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
