//! Offline stub of the `rand` crate.
//!
//! Implements the small API surface this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] — on
//! top of a SplitMix64 generator. Deterministic by construction: the same
//! seed always yields the same stream, which is exactly what the
//! reproducibility-first experiments here require.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG's raw stream.
pub trait StandardSample: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that can be sampled into their element type.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardSample::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_range!(i64, i32, i16, i8);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = StandardSample::sample(self);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // Pre-mix so that small consecutive seeds decorrelate.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xor-shift-multiply rounds per word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(0usize..=4);
            assert!(j <= 4);
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
