//! Quickstart: train a small multi-precision system end-to-end and run
//! the heterogeneous pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Uses small 8×8 synthetic images so it finishes in under a minute;
//! the bench binaries (`cargo run -p mp-bench --bin eval_all`) run the
//! full `Fast` profile.

use multiprec::core::experiment::{ExperimentConfig, TrainedSystem};
use multiprec::host::zoo::ModelId;
use multiprec::obs::SharedRecorder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train everything: the binarised FINN-style network, the three
    //    host models, and the decision-making unit. (A mid-size config:
    //    big enough to learn, small enough for under a minute of CPU.)
    let mut config = ExperimentConfig::smoke(42);
    config.train_images = 800;
    config.test_images = 300;
    config.bnn_epochs = 8;
    config.host_epochs = 6;
    config.dmu_epochs = 20;
    // At 8×8 the full-difficulty distribution is brutally hard; ease it
    // so the demo shows the trade-off clearly. The Fast profile keeps
    // the calibrated difficulty.
    config.synth.noise_std = 0.35;
    config.synth.blend = 0.2;
    println!("training BNN + hosts + DMU on synthetic images…");
    let system = TrainedSystem::prepare(&config)?;
    println!(
        "BNN (hardware XNOR-popcount path): {:.1}% test accuracy",
        100.0 * system.bnn_test_accuracy
    );
    for id in ModelId::ALL {
        println!(
            "{}: {:.1}% standalone test accuracy",
            id.name(),
            100.0 * system.host_accuracy(id)
        );
    }

    // 2. Pair the BNN with Model A through the DMU at the configured
    //    threshold, timed at the paper's ZC702 rates, with a recorder
    //    attached so the run leaves a per-stage trace behind.
    let rec = SharedRecorder::new();
    let run_opts = system.run_options(ModelId::A)?.with_recorder(&rec);
    let timing = *run_opts.timing();
    let result = system.execute(ModelId::A, &run_opts)?;
    println!(
        "\nmulti-precision (Model A + FINN @ threshold {}):",
        system.config.threshold
    );
    println!(
        "  accuracy: {:.1}% (BNN alone: {:.1}%)",
        100.0 * result.accuracy,
        100.0 * result.bnn_accuracy
    );
    println!(
        "  reruns: {} of {} images ({:.1}%)",
        result.rerun_count,
        result.total_images,
        100.0 * result.quadrants.rerun_ratio()
    );
    println!(
        "  throughput: {:.1} img/s modelled (eq. 1 predicts {:.1}; host alone {:.1})",
        result.modeled_images_per_sec,
        result.analytic_images_per_sec,
        1.0 / timing.t_fp_img_s
    );

    // 3. The recorder saw every stage of that run.
    let report = rec.report();
    println!(
        "\nobservability: {} spans, {} counters, {} events recorded",
        report.spans.len(),
        report.counters.len(),
        report.events.len()
    );
    if let Some(bnn_stage) = report.span("pipeline.bnn_stage") {
        println!(
            "  BNN+DMU stage: {:.1} ms over the whole test set",
            1e3 * bnn_stage.total_s
        );
    }
    Ok(())
}
