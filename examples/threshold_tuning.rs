//! Threshold tuning: the accuracy ↔ throughput dial of the paper's
//! §III-B, eqs. (6)–(7).
//!
//! Trains a small system, then sweeps the DMU confidence threshold and
//! prints, for each point, the rerun load, the resulting multi-precision
//! accuracy, and the modelled throughput with Model A on the host — the
//! curve an integrator would use to pick an operating point for a target
//! frame rate.
//!
//! ```sh
//! cargo run --release --example threshold_tuning
//! ```

use multiprec::core::experiment::{ExperimentConfig, TrainedSystem};
use multiprec::core::{CascadePolicy, MultiPrecisionPipeline, RunOptions};
use multiprec::host::zoo::ModelId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training system (small demo profile)…");
    const SEED: u64 = 7;
    let mut config = ExperimentConfig::smoke(SEED);
    config.train_images = 800;
    config.test_images = 300;
    config.bnn_epochs = 8;
    config.host_epochs = 6;
    config.dmu_epochs = 20;
    config.synth.noise_std = 0.35;
    config.synth.blend = 0.2;
    let mut system = TrainedSystem::prepare(&config)?;
    let timing = system.paper_timing(ModelId::A)?;
    let global_acc = system.host_accuracy(ModelId::A);

    println!(
        "\n{:>9}  {:>8}  {:>9}  {:>11}  {:>10}",
        "threshold", "rerun %", "accuracy", "img/s", "max achievable"
    );
    let hw = system.hw.clone();
    let dmu = system.dmu.clone();
    let test = system.test.clone();
    let (_, host, _) = system
        .hosts
        .iter_mut()
        .find(|(id, _, _)| *id == ModelId::A)
        .expect("Model A present");
    // One pipeline, one options value; the sweep is a per-run decision
    // policy — each threshold is the 2-stage cascade `dmu(t)`.
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.5);
    let base_opts = RunOptions::new(timing).with_host_accuracy(global_acc);
    for threshold in [0.0f32, 0.3, 0.5, 0.7, 0.84, 0.95, 1.0] {
        let r = pipeline.execute(
            host,
            &test,
            &base_opts
                .clone()
                .with_cascade(CascadePolicy::dmu(threshold)),
        )?;
        println!(
            "{:>9.2}  {:>7.1}%  {:>8.1}%  {:>11.1}  {:>9.1}%",
            threshold,
            100.0 * r.quadrants.rerun_ratio(),
            100.0 * r.accuracy,
            r.modeled_images_per_sec,
            100.0 * r.quadrants.max_achievable_accuracy(),
        );
    }
    println!(
        "\nreading the dial: low thresholds keep the BNN's speed, high \
         thresholds buy the host's accuracy — the paper picks 0.84 for its \
         balanced system."
    );
    Ok(())
}
