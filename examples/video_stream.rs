//! Live-video scenario: the paper motivates the balanced multi-precision
//! system by the 60 fps bar of real-time video. This example streams
//! "frames" through the pipeline with the FPGA side and the host network
//! genuinely running on separate threads (Fig. 2's structure), and shows
//! which host pairing sustains 60 fps at the ZC702's rates.
//!
//! ```sh
//! cargo run --release --example video_stream
//! ```

use multiprec::core::dmu::selection;
use multiprec::core::experiment::{ExperimentConfig, TrainedSystem};
use multiprec::core::{MultiPrecisionPipeline, RunOptions};
use multiprec::host::zoo::ModelId;

const TARGET_FPS: f64 = 60.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training system (small demo profile)…");
    const SEED: u64 = 11;
    let mut config = ExperimentConfig::smoke(SEED);
    config.train_images = 800;
    config.test_images = 300;
    config.bnn_epochs = 8;
    config.host_epochs = 6;
    config.dmu_epochs = 20;
    config.synth.noise_std = 0.35;
    config.synth.blend = 0.2;
    let mut system = TrainedSystem::prepare(&config)?;
    let hw = system.hw.clone();
    let dmu = system.dmu.clone();
    let test = system.test.clone();
    // Pick each pairing's operating threshold by the paper's eq. (6)/(7)
    // procedure: the rerun budget the 60 fps target leaves on this host.
    let thresholds: Vec<f32> = (0..=40).map(|i| 0.3 + 0.0175 * i as f32).collect();
    let sweep = dmu.threshold_sweep(
        &system.bnn_train_scores,
        &system.bnn_train_correct,
        &thresholds,
    )?;

    println!(
        "\nstreaming {} frames through each host pairing (two real threads):",
        test.len()
    );
    for id in ModelId::ALL {
        let timing = system.paper_timing(id)?;
        let global_acc = system.host_accuracy(id);
        let (_, host, _) = system
            .hosts
            .iter_mut()
            .find(|(h, _, _)| *h == id)
            .expect("host model present");
        let host_fps = 1.0 / timing.t_fp_img_s;
        let (threshold, _) =
            selection::select_threshold_for_throughput(&sweep, TARGET_FPS, host_fps);
        let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, threshold);
        let run_opts = RunOptions::new(timing)
            .threaded()
            .with_host_accuracy(global_acc);
        let r = pipeline.execute(host, &test, &run_opts)?;
        let verdict = if r.modeled_images_per_sec >= TARGET_FPS {
            "meets 60 fps"
        } else {
            "too slow for live video"
        };
        println!(
            "  {:<28} thr {:.2}: {:.1}% accurate @ {:>6.1} img/s (ZC702 model) — {} \
             [simulated here in {:.2}s wall]",
            format!("{} + FINN:", id.name()),
            threshold,
            100.0 * r.accuracy,
            r.modeled_images_per_sec,
            verdict,
            r.wall_seconds.unwrap_or_default(),
        );
    }
    println!(
        "\nas in the paper's Table V, only the light Model A pairing clears the \
         real-time bar on the Cortex-A9; deeper hosts need faster processors."
    );
    Ok(())
}
