//! FINN design-space explorer: pick a throughput target, fold the
//! paper's CIFAR-10 network for it, and report the resources the design
//! needs on two Zynq devices.
//!
//! ```sh
//! cargo run --release --example finn_explorer -- 1000
//! ```
//!
//! The optional argument is the target in images/second (default 430,
//! the paper's selected operating point).

use multiprec::bnn::FinnTopology;
use multiprec::fpga::{design::DesignPoint, device::Device, folding::FoldingSearch};

fn main() {
    let target_fps: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(430.0);

    let topology = FinnTopology::paper();
    let engines = topology.engines();
    println!(
        "network: {} engines, {:.2} Mbit of single-bit weights",
        engines.len(),
        topology.total_weight_bits() as f64 / 1e6
    );

    for device in [Device::zc702(), Device::zu3eg()] {
        let target_cycles = (device.clock_hz / target_fps).max(1.0) as u64;
        let folding = FoldingSearch::new(&engines).balanced(target_cycles);
        for partitioned in [false, true] {
            let point = DesignPoint::evaluate(&engines, &folding, &device, partitioned);
            println!(
                "\n{} @ {:.0} MHz, {} allocation:",
                device.name,
                device.clock_hz / 1e6,
                if partitioned { "partitioned" } else { "naive" }
            );
            println!(
                "  folding: total {} PEs, {} SIMD lanes",
                point.total_pe, point.total_lanes
            );
            for (spec, f) in engines.iter().zip(folding.engines()) {
                println!("    {:>14}  P={:<3} S={:<4}", spec.name, f.p, f.s);
            }
            println!(
                "  throughput: {:.0} img/s expected, {:.0} img/s obtained",
                point.expected_fps, point.obtained_fps
            );
            println!(
                "  area: {} BRAM-18K ({:.0}%), {} LUTs ({:.0}%) — {}",
                point.bram_18k,
                point.bram_pct,
                point.luts,
                point.lut_pct,
                if point.fits(&device) {
                    "fits"
                } else {
                    "DOES NOT FIT"
                }
            );
            // Batch behaviour through the streaming pipeline.
            let sim = point.simulate_batch(&device, 256, 2);
            println!(
                "  256-image batch: {:.0} img/s, first-image latency {:.2} ms",
                sim.throughput_fps,
                1e3 * sim.first_latency_s
            );
        }
    }
}
