//! Runs the multi-precision system on the *real* CIFAR-10 dataset when
//! its standard binary distribution is available on disk.
//!
//! ```sh
//! cargo run --release --example cifar10_real -- /path/to/cifar-10-batches-bin
//! ```
//!
//! Without the dataset this prints what it would do and exits cleanly —
//! the synthetic examples cover the no-data case. With the dataset it
//! trains the scaled FINN network and Model A on a subset and runs the
//! DMU-gated pipeline, exactly the synthetic flow with real images.

use multiprec::bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use multiprec::core::{Dmu, MultiPrecisionPipeline, PipelineTiming, RunOptions};
use multiprec::dataset::cifar10;
use multiprec::host::zoo::{self, ModelId};
use multiprec::nn::train::{Adam, Trainer};
use multiprec::nn::Network;
use multiprec::tensor::init::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cifar-10-batches-bin".to_string());
    if !cifar10::is_available(&dir) {
        println!(
            "CIFAR-10 binary batches not found under `{dir}`.\n\
             Download https://www.cs.toronto.edu/~kriz/cifar-10-binary.tar.gz,\n\
             unpack it, and pass the directory as the first argument.\n\
             (The synthetic-data examples — quickstart, threshold_tuning —\n\
             run without any download.)"
        );
        return Ok(());
    }

    println!("loading CIFAR-10 from {dir}…");
    let (train_full, test_full) = cifar10::load(&dir)?;
    // A subset keeps the pure-Rust training run in CPU-minutes; raise
    // these numbers for better accuracy.
    let train = train_full.take(4000)?;
    let test = test_full.take(1000)?;
    println!(
        "train {} / test {} images; channel stats: {:?}",
        train.len(),
        test.len(),
        train.channel_stats(),
    );

    // Binarised network at quarter width (full Table I width is ~hours
    // of scalar CPU training; the topology pattern is identical).
    let mut rng = TensorRng::seed_from(2018);
    let mut bnn = BnnClassifier::new(FinnTopology::scaled(32, 32, 4), &mut rng)?;
    let mut trainer = Trainer::new(Adam::new(0.003), 32);
    let mut trng = TensorRng::seed_from(1);
    println!("training BNN (8 epochs)…");
    for epoch in 0..8 {
        let stats = trainer.train_epoch(&mut bnn, train.images(), train.labels(), &mut trng)?;
        println!("  epoch {epoch}: loss {:.3}", stats.mean_loss);
    }
    let hw = HardwareBnn::from_classifier(&bnn)?;
    let train_scores = hw.infer_batch(train.images())?;
    let train_preds = Network::argmax_rows(&train_scores)?;
    let train_correct: Vec<bool> = train_preds
        .iter()
        .zip(train.labels())
        .map(|(p, l)| p == l)
        .collect();

    println!("training DMU…");
    let mut dmu = Dmu::new(10);
    dmu.train(
        &train_scores,
        &train_correct,
        30,
        0.05,
        &mut TensorRng::seed_from(2),
    )?;

    println!("training Model A host…");
    let mut host = zoo::build_paper(ModelId::A, &mut TensorRng::seed_from(3))?;
    let mut host_trainer = Trainer::new(Adam::new(0.002), 32);
    for _ in 0..6 {
        host_trainer.train_epoch(&mut host, train.images(), train.labels(), &mut trng)?;
    }
    let host_acc = host_trainer.evaluate(&mut host, test.images(), test.labels())? as f64;

    let timing = PipelineTiming::new(1.0 / 430.15, 1.0 / 29.68, 100);
    let pipeline = MultiPrecisionPipeline::new(&hw, &dmu, 0.84);
    let result = pipeline.execute(
        &host,
        &test,
        &RunOptions::new(timing).with_host_accuracy(host_acc),
    )?;
    println!(
        "\nreal CIFAR-10 results: BNN {:.1}% → multi-precision {:.1}% \
         ({:.1}% of images rerun) at {:.1} img/s modelled",
        100.0 * result.bnn_accuracy,
        100.0 * result.accuracy,
        100.0 * result.quadrants.rerun_ratio(),
        result.modeled_images_per_sec,
    );
    Ok(())
}
