//! Cross-crate check: the folded XNOR-popcount hardware path agrees with
//! the float/STE training view of the binarised network on real
//! synthetic data.

use multiprec::bnn::hardware::INPUT_QUANT_SCALE;
use multiprec::bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use multiprec::dataset::SynthSpec;
use multiprec::nn::train::{Adam, Trainer};
use multiprec::nn::Network;
use multiprec::tensor::init::TensorRng;

fn trained_bnn(seed: u64) -> (BnnClassifier, multiprec::dataset::Dataset) {
    let mut spec = SynthSpec::tiny();
    spec.seed = seed;
    let mut gen = spec.build().expect("spec valid");
    let train = gen.generate(160).expect("generation");
    let test = gen.generate(80).expect("generation");
    let mut rng = TensorRng::seed_from(seed);
    let mut bnn =
        BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).expect("classifier builds");
    let mut trainer = Trainer::new(Adam::new(0.003), 20);
    let mut trng = TensorRng::seed_from(seed + 1);
    for _ in 0..3 {
        trainer
            .train_epoch(&mut bnn, train.images(), train.labels(), &mut trng)
            .expect("epoch");
    }
    (bnn, test)
}

#[test]
fn hardware_predictions_match_float_view_on_grid_inputs() {
    let (mut bnn, test) = trained_bnn(21);
    let hw = HardwareBnn::from_classifier(&bnn).expect("export");
    // Quantise inputs onto the first engine's fixed-point grid so the
    // two paths are bit-equivalent.
    let quantised = test
        .images()
        .map(|x| HardwareBnn::quantize_pixel(x) as f32 / INPUT_QUANT_SCALE);
    let float_scores = bnn.infer(&quantised).expect("float inference");
    let float_preds = Network::argmax_rows(&float_scores).expect("argmax");
    let mut agree = 0;
    #[allow(clippy::needless_range_loop)] // i selects both image and prediction
    for i in 0..test.len() {
        let img = quantised.batch_item(i).expect("image");
        if hw.classify(&img).expect("hw classify") == float_preds[i] {
            agree += 1;
        }
    }
    assert!(
        agree >= test.len() - 1,
        "hardware disagrees with float view on {}/{} images",
        test.len() - agree,
        test.len()
    );
}

#[test]
fn hardware_scores_are_valid_xnor_accumulations() {
    let (bnn, test) = trained_bnn(22);
    let hw = HardwareBnn::from_classifier(&bnn).expect("export");
    let fan_in = *bnn
        .topology()
        .fc_sizes()
        .iter()
        .rev()
        .nth(1)
        .expect("hidden FC") as i64;
    for i in 0..10 {
        let img = test.images().batch_item(i).expect("image");
        let scores = hw.infer_image(&img).expect("hw inference");
        for &s in &scores {
            assert!(s.abs() <= fan_in, "score {s} exceeds fan-in {fan_in}");
            assert_eq!((s - fan_in).rem_euclid(2), 0, "score {s} parity");
        }
    }
}

#[test]
fn export_is_deterministic() {
    let (bnn, _) = trained_bnn(23);
    let a = HardwareBnn::from_classifier(&bnn).expect("export");
    let b = HardwareBnn::from_classifier(&bnn).expect("export");
    // Same weights + thresholds ⇒ identical serialised form.
    let ja = serde_json::to_string(&a).expect("serialises");
    let jb = serde_json::to_string(&b).expect("serialises");
    assert_eq!(ja, jb);
}

#[test]
fn hardware_round_trips_through_serde() {
    let (bnn, test) = trained_bnn(24);
    let hw = HardwareBnn::from_classifier(&bnn).expect("export");
    let json = serde_json::to_string(&hw).expect("serialises");
    let back: HardwareBnn = serde_json::from_str(&json).expect("deserialises");
    let img = test.images().batch_item(0).expect("image");
    assert_eq!(
        hw.infer_image(&img).expect("original"),
        back.infer_image(&img).expect("round-tripped")
    );
}
