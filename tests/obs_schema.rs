//! Golden-schema tests for the observability layer: the exported
//! `results/obs_*.json` contract. Span names, counter keys and histogram
//! bucket edges are stable strings — CI catches accidental renames here
//! before any dashboard does.

use std::time::Instant;

use multiprec::bnn::{BnnClassifier, FinnTopology, HardwareBnn};
use multiprec::core::dmu::Dmu;
use multiprec::core::{MultiPrecisionPipeline, PipelineTiming, RunOptions};
use multiprec::dataset::{Dataset, SynthSpec};
use multiprec::nn::train::Model;
use multiprec::nn::{Mode, Network};
use multiprec::obs::{report, schema, SharedRecorder};
use multiprec::tensor::init::TensorRng;
use multiprec::tensor::{Parallelism, Shape};

/// The golden names. These literals are duplicated from `mp_obs::schema`
/// ON PURPOSE: if a constant over there is renamed, this test — not a
/// downstream dashboard — is what breaks.
const GOLDEN_SPANS: [(&str, &str); 6] = [
    ("SPAN_PIPELINE_EXECUTE", "pipeline.execute"),
    ("SPAN_PIPELINE_BNN_STAGE", "pipeline.bnn_stage"),
    ("SPAN_PIPELINE_BNN_BLOCK", "pipeline.bnn_block"),
    ("SPAN_PIPELINE_HOST_RERUN", "pipeline.host_rerun"),
    ("SPAN_SERVE_BATCH", "serve.batch"),
    ("SPAN_FLEET_BATCH", "fleet.batch"),
];

const GOLDEN_COUNTERS: [(&str, &str); 22] = [
    ("CTR_IMAGES", "pipeline.images"),
    ("CTR_FLAGGED", "pipeline.flagged"),
    ("CTR_RERUN_OK", "pipeline.rerun_ok"),
    ("CTR_DEGRADED", "pipeline.degraded"),
    ("CTR_RETRIES", "pipeline.retries"),
    ("CTR_BREAKER_TRIPS", "pipeline.breaker_trips"),
    ("CTR_BACKPRESSURE", "pipeline.backpressure"),
    ("CTR_HOST_ATTEMPTS", "pipeline.host_attempts"),
    ("CTR_STREAM_IMAGES", "stream.images"),
    ("CTR_SERVE_REQUESTS", "serve.requests"),
    ("CTR_SERVE_SHED", "serve.shed"),
    ("CTR_SERVE_BATCHES", "serve.batches"),
    ("CTR_FLEET_REQUESTS", "fleet.requests"),
    ("CTR_FLEET_SERVED", "fleet.served"),
    ("CTR_FLEET_SHED", "fleet.shed"),
    ("CTR_FLEET_REDIRECTED", "fleet.redirected"),
    ("CTR_FLEET_HEDGES", "fleet.hedges"),
    ("CTR_FLEET_HEDGE_WINS", "fleet.hedge_wins"),
    ("CTR_FLEET_BREAKER_OPENS", "fleet.breaker_opens"),
    ("CTR_FLEET_BREAKER_CLOSES", "fleet.breaker_closes"),
    ("CTR_FLEET_CRASHES", "fleet.crashes"),
    ("CTR_FLEET_RECOVERIES", "fleet.recoveries"),
];

const GOLDEN_HISTOGRAMS: [(&str, &str); 12] = [
    ("HIST_BNN_IMAGE_S", "pipeline.bnn_image_s"),
    ("HIST_HOST_BATCH_S", "pipeline.host_batch_s"),
    ("HIST_BACKOFF_S", "pipeline.backoff_s"),
    ("HIST_QUEUE_DEPTH", "pipeline.queue_depth"),
    ("HIST_BACKPRESSURE_WAIT_S", "pipeline.backpressure_wait_s"),
    ("HIST_STREAM_LATENCY_S", "stream.latency_s"),
    ("HIST_SERVE_QUEUE_WAIT_S", "serve.queue_wait_s"),
    ("HIST_SERVE_LATENCY_S", "serve.latency_s"),
    ("HIST_SERVE_BATCH_SIZE", "serve.batch_size"),
    ("HIST_FLEET_QUEUE_WAIT_S", "fleet.queue_wait_s"),
    ("HIST_FLEET_LATENCY_S", "fleet.latency_s"),
    ("HIST_FLEET_BATCH_SIZE", "fleet.batch_size"),
];

#[test]
fn schema_names_are_golden() {
    assert_eq!(
        schema::SCHEMA_VERSION,
        1,
        "schema version bumped — update the goldens"
    );
    let actual_spans = [
        schema::SPAN_PIPELINE_EXECUTE,
        schema::SPAN_PIPELINE_BNN_STAGE,
        schema::SPAN_PIPELINE_BNN_BLOCK,
        schema::SPAN_PIPELINE_HOST_RERUN,
        schema::SPAN_SERVE_BATCH,
        schema::SPAN_FLEET_BATCH,
    ];
    for ((label, golden), actual) in GOLDEN_SPANS.iter().zip(actual_spans) {
        assert_eq!(actual, *golden, "{label} renamed");
    }
    let actual_counters = [
        schema::CTR_IMAGES,
        schema::CTR_FLAGGED,
        schema::CTR_RERUN_OK,
        schema::CTR_DEGRADED,
        schema::CTR_RETRIES,
        schema::CTR_BREAKER_TRIPS,
        schema::CTR_BACKPRESSURE,
        schema::CTR_HOST_ATTEMPTS,
        schema::CTR_STREAM_IMAGES,
        schema::CTR_SERVE_REQUESTS,
        schema::CTR_SERVE_SHED,
        schema::CTR_SERVE_BATCHES,
        schema::CTR_FLEET_REQUESTS,
        schema::CTR_FLEET_SERVED,
        schema::CTR_FLEET_SHED,
        schema::CTR_FLEET_REDIRECTED,
        schema::CTR_FLEET_HEDGES,
        schema::CTR_FLEET_HEDGE_WINS,
        schema::CTR_FLEET_BREAKER_OPENS,
        schema::CTR_FLEET_BREAKER_CLOSES,
        schema::CTR_FLEET_CRASHES,
        schema::CTR_FLEET_RECOVERIES,
    ];
    for ((label, golden), actual) in GOLDEN_COUNTERS.iter().zip(actual_counters) {
        assert_eq!(actual, *golden, "{label} renamed");
    }
    let actual_hists = [
        schema::HIST_BNN_IMAGE_S,
        schema::HIST_HOST_BATCH_S,
        schema::HIST_BACKOFF_S,
        schema::HIST_QUEUE_DEPTH,
        schema::HIST_BACKPRESSURE_WAIT_S,
        schema::HIST_STREAM_LATENCY_S,
        schema::HIST_SERVE_QUEUE_WAIT_S,
        schema::HIST_SERVE_LATENCY_S,
        schema::HIST_SERVE_BATCH_SIZE,
        schema::HIST_FLEET_QUEUE_WAIT_S,
        schema::HIST_FLEET_LATENCY_S,
        schema::HIST_FLEET_BATCH_SIZE,
    ];
    for ((label, golden), actual) in GOLDEN_HISTOGRAMS.iter().zip(actual_hists) {
        assert_eq!(actual, *golden, "{label} renamed");
    }
    assert_eq!(schema::SPAN_BNN_STAGE_PREFIX, "bnn.stage");
    assert_eq!(schema::SPAN_HOST_LAYER_PREFIX, "host.layer");
    assert_eq!(schema::SPAN_STREAM_STAGE_PREFIX, "stream.stage");
    assert_eq!(schema::CTR_FLEET_REPLICA_PREFIX, "fleet.replica");
    assert_eq!(schema::SPAN_CASCADE_STAGE_PREFIX, "cascade.stage");
    assert_eq!(schema::CTR_CASCADE_STAGE_PREFIX, "cascade.stage");
    // The per-stage helper names are part of the exported contract too.
    assert_eq!(schema::cascade_stage_span(0), "cascade.stage0");
    assert_eq!(schema::cascade_entered_counter(1), "cascade.stage1.entered");
    assert_eq!(
        schema::cascade_accepted_counter(2),
        "cascade.stage2.accepted"
    );
}

#[test]
fn bucket_edges_are_golden() {
    assert_eq!(
        schema::LATENCY_BUCKET_EDGES_S,
        [1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 1.0, 5.0, 30.0],
        "latency bucket edges drifted"
    );
    assert_eq!(
        schema::COUNT_BUCKET_EDGES,
        [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
        "count bucket edges drifted"
    );
    // The suffix rule is load-bearing: `_s` means seconds.
    for (_, name) in GOLDEN_HISTOGRAMS {
        let expect: &[f64] = if name.ends_with("_s") {
            &schema::LATENCY_BUCKET_EDGES_S
        } else {
            &schema::COUNT_BUCKET_EDGES
        };
        assert_eq!(schema::bucket_edges(name), expect, "{name}");
    }
}

fn tiny_system(images: usize) -> (HardwareBnn, Dmu, Dataset, Network) {
    let (_, hw, dmu, data, host) = tiny_system_full(images);
    (hw, dmu, data, host)
}

fn tiny_system_full(images: usize) -> (BnnClassifier, HardwareBnn, Dmu, Dataset, Network) {
    let mut rng = TensorRng::seed_from(2018);
    let mut bnn = BnnClassifier::new(FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
    for _ in 0..3 {
        let x = rng.normal(Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
        bnn.forward_mode(&x, Mode::Train).unwrap();
    }
    let hw = HardwareBnn::from_classifier(&bnn).unwrap();
    let dmu = Dmu::with_weights(vec![0.1; 10], 0.0);
    let data = SynthSpec::tiny().generate(images).unwrap();
    let host = Network::builder(Shape::nchw(1, 3, 8, 8))
        .conv2d(8, 3, 1, 1, &mut rng)
        .unwrap()
        .relu()
        .global_avg_pool()
        .linear(10, &mut rng)
        .unwrap()
        .build();
    (bnn, hw, dmu, data, host)
}

/// A multi-stage cascade run must emit `cascade.stage<i>` spans and
/// `cascade.stage<i>.{entered,accepted}` counters that pass schema
/// validation and mirror the run's own `stage_traffic` accounting.
#[test]
fn cascade_report_validates_and_mirrors_traffic() {
    use multiprec::core::{CascadePolicy, CascadeStage, StageClassifier};
    use multiprec::int::{NetworkPrecision, QuantBnn};
    use std::sync::Arc;

    let (bnn, hw, dmu, data, host) = tiny_system_full(40);
    let layers = bnn.export_latent().len();
    let quant =
        QuantBnn::from_classifier(&bnn, NetworkPrecision::uniform(layers, 4, 4).unwrap()).unwrap();
    let policy = CascadePolicy::try_new(vec![
        CascadeStage::gated(StageClassifier::Primary, 0.6),
        CascadeStage::gated(StageClassifier::Quantized(Arc::new(quant)), 0.4),
        CascadeStage::terminal(StageClassifier::HostFloat),
    ])
    .unwrap();
    let rec = SharedRecorder::new();
    let opts = RunOptions::new(PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, 10))
        .with_host_accuracy(0.5)
        .with_cascade(policy)
        .with_recorder(&rec);
    let result = MultiPrecisionPipeline::new(&hw, &dmu, 0.7)
        .execute(&host, &data, &opts)
        .unwrap();
    let report = rec.report();
    schema::validate_report(&report).unwrap();
    assert_eq!(result.stage_traffic.len(), 3);
    for (s, traffic) in result.stage_traffic.iter().enumerate() {
        assert_eq!(
            report.counter(&schema::cascade_entered_counter(s)),
            traffic.entered as u64,
            "stage {s} entered"
        );
        assert_eq!(
            report.counter(&schema::cascade_accepted_counter(s)),
            traffic.accepted as u64,
            "stage {s} accepted"
        );
    }
}

#[test]
fn exported_report_round_trips_and_validates() {
    let (hw, dmu, data, host) = tiny_system(40);
    let rec = SharedRecorder::new();
    let opts = RunOptions::new(PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, 10))
        .with_host_accuracy(0.5)
        .with_recorder(&rec);
    let result = MultiPrecisionPipeline::new(&hw, &dmu, 0.7)
        .execute(&host, &data, &opts)
        .unwrap();
    let original = rec.report();
    schema::validate_report(&original).unwrap();

    let dir = std::env::temp_dir().join(format!("mp-obs-golden-{}", std::process::id()));
    let path = report::write_report(&original, &dir, "golden_test").unwrap();
    assert!(path.ends_with("obs_golden_test.json"));
    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = report::report_from_json(&text).unwrap();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
    schema::validate_report(&parsed).unwrap();

    // The round trip preserves the whole aggregate…
    assert_eq!(parsed.schema_version, original.schema_version);
    assert_eq!(parsed.spans.len(), original.spans.len());
    assert_eq!(parsed.counters.len(), original.counters.len());
    assert_eq!(parsed.histograms.len(), original.histograms.len());
    assert_eq!(parsed.events.len(), original.events.len());
    // …and the counters still mirror the run they came from.
    assert_eq!(
        parsed.counter(schema::CTR_IMAGES),
        result.total_images as u64
    );
    assert_eq!(
        parsed.counter(schema::CTR_RERUN_OK),
        result.rerun_count as u64
    );
    assert_eq!(parsed.span(schema::SPAN_PIPELINE_EXECUTE).unwrap().count, 1);
}

/// Acceptance criterion: the per-stage BNN spans must account for the
/// measured batch wall time. With sequential parallelism the stage spans
/// tile the whole inner loop, so their sum can neither exceed the wall
/// clock nor fall far below it.
#[test]
fn bnn_stage_spans_sum_to_batch_wall_time() {
    let (hw, _, data, _) = tiny_system(128);
    let rec = SharedRecorder::new();
    // Warm-up outside the measurement (page faults, lazy allocs).
    hw.infer_batch_obs(
        data.images(),
        Parallelism::new(1),
        &multiprec::obs::NULL_RECORDER,
    )
    .unwrap();
    let t0 = Instant::now();
    hw.infer_batch_obs(data.images(), Parallelism::new(1), &rec)
        .unwrap();
    let wall_s = t0.elapsed().as_secs_f64();
    let report = rec.report();
    schema::validate_report(&report).unwrap();
    let stage_sum: f64 = report
        .spans
        .iter()
        .filter(|s| s.name.starts_with(schema::SPAN_BNN_STAGE_PREFIX))
        .map(|s| s.total_s)
        .sum();
    assert!(stage_sum > 0.0, "no BNN stage spans recorded");
    assert!(
        stage_sum <= wall_s * 1.02 + 1e-4,
        "stage spans ({stage_sum:.6}s) exceed the batch wall time ({wall_s:.6}s)"
    );
    assert!(
        stage_sum >= wall_s * 0.5,
        "stage spans ({stage_sum:.6}s) account for under half the wall time ({wall_s:.6}s)"
    );
}
