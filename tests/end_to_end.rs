//! End-to-end integration: train the full multi-precision system on
//! synthetic data (smoke profile) and check the paper's structural
//! invariants across crates.

use multiprec::core::experiment::{ExperimentConfig, TrainedSystem};
use multiprec::core::{MultiPrecisionPipeline, RunOptions};
use multiprec::host::zoo::ModelId;

fn system(seed: u64) -> TrainedSystem {
    TrainedSystem::prepare(&ExperimentConfig::smoke(seed)).expect("smoke system trains")
}

fn run(sys: &TrainedSystem, id: ModelId) -> multiprec::core::PipelineResult {
    let opts = sys.run_options(id).expect("run options");
    sys.execute(id, &opts).expect("pipeline")
}

#[test]
fn pipeline_runs_for_all_host_models() {
    let sys = system(1);
    for id in ModelId::ALL {
        let r = run(&sys, id);
        assert_eq!(r.total_images, sys.test.len());
        assert!((0.0..=1.0).contains(&r.accuracy), "{id:?}: {r:?}");
        // Quadrants are a partition of the test set.
        let q = r.quadrants;
        assert!((q.fs + q.fbar_sbar + q.fbar_s + q.fs_bar - 1.0).abs() < 1e-9);
        // The DMU cap binds.
        assert!(r.accuracy <= q.max_achievable_accuracy() + 1e-9);
        // Rerun accounting is consistent.
        assert_eq!(
            r.rerun_count,
            (q.rerun_ratio() * r.total_images as f64).round() as usize
        );
    }
}

#[test]
fn multi_precision_throughput_sits_between_host_and_bnn() {
    let sys = system(2);
    let timing = sys.paper_timing(ModelId::A).expect("timing");
    let r = run(&sys, ModelId::A);
    let host_fps = 1.0 / timing.t_fp_img_s;
    let bnn_fps = 1.0 / timing.t_bnn_img_s;
    // Unless everything reruns, the system beats the host alone and can
    // never beat the BNN alone.
    if r.quadrants.rerun_ratio() < 0.95 {
        assert!(
            r.modeled_images_per_sec > host_fps,
            "{} vs host {host_fps}",
            r.modeled_images_per_sec
        );
    }
    assert!(r.modeled_images_per_sec <= bnn_fps * 1.01);
}

#[test]
fn eq2_exact_form_matches_measurement() {
    let sys = system(3);
    let r = run(&sys, ModelId::B);
    let exact = multiprec::core::model::accuracy_exact(
        r.bnn_accuracy,
        r.host_subset_accuracy
            .expect("some images rerun at the paper threshold"),
        r.quadrants.rerun_ratio(),
        r.quadrants.rerun_err_ratio(),
    );
    assert!(
        (exact - r.accuracy).abs() < 1e-6,
        "exact identity {exact} vs measured {}",
        r.accuracy
    );
}

#[test]
fn modeled_and_threaded_executors_agree() {
    let sys = system(4);
    let timing = sys.paper_timing(ModelId::A).expect("timing");
    let global = sys.host_accuracy(ModelId::A);
    let host = sys.host(ModelId::A);
    let pipeline = MultiPrecisionPipeline::new(&sys.hw, &sys.dmu, 0.84);
    let opts = RunOptions::new(timing).with_host_accuracy(global);
    let seq = pipeline.execute(host, &sys.test, &opts).expect("modeled");
    let par = pipeline
        .execute(host, &sys.test, &opts.clone().threaded())
        .expect("threaded");
    assert_eq!(seq.predictions, par.predictions);
    assert_eq!(seq.quadrants, par.quadrants);
}

#[test]
fn whole_experiment_is_reproducible() {
    let a = system(5);
    let b = system(5);
    assert_eq!(a.bnn_test_accuracy, b.bnn_test_accuracy);
    assert_eq!(a.bnn_test_correct, b.bnn_test_correct);
    assert_eq!(a.dmu.weights(), b.dmu.weights());
    for id in ModelId::ALL {
        assert_eq!(a.host_accuracy(id), b.host_accuracy(id));
    }
}

#[test]
fn different_seeds_give_different_systems() {
    let a = system(6);
    let b = system(7);
    assert_ne!(a.dmu.weights(), b.dmu.weights());
}
