//! Cross-crate property tests on the system's core invariants.

use proptest::prelude::*;

use multiprec::bnn::bits::{BitMatrix, BitVec};
use multiprec::bnn::{EngineKind, EngineSpec, FinnTopology};
use multiprec::core::dmu::{ConfusionQuadrants, Dmu};
use multiprec::core::model;
use multiprec::fpga::cycle_model::{divisors, engine_cycles};
use multiprec::fpga::folding::FoldingSearch;
use multiprec::fpga::memory::{allocate_array, best_partition};
use multiprec::fpga::stream_sim::StreamSim;
use multiprec::tensor::conv::{col2im, im2col, ConvGeometry};
use multiprec::tensor::{linalg, Shape, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tensor substrate ----

    #[test]
    fn gemm_is_linear_in_first_argument(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, scale in -3.0f32..3.0
    ) {
        let a = Tensor::from_fn([m, k], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn([k, n], |i| (i as f32 * 0.3).cos());
        let scaled = a.map(|x| x * scale);
        let left = linalg::matmul(&scaled, &b).unwrap();
        let mut right = linalg::matmul(&a, &b).unwrap();
        right.scale(scale);
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2
    ) {
        let geom = ConvGeometry::new(k, stride, pad);
        prop_assume!(geom.output_dim(h) > 0 && geom.output_dim(w) > 0);
        let x = Tensor::from_fn(Shape::nchw(1, c, h, w), |i| ((i * 31) % 17) as f32 - 8.0);
        let cols = im2col(&x, geom).unwrap();
        let y = Tensor::from_fn(cols.shape().clone(), |i| ((i * 13) % 11) as f32 - 5.0);
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, c, h, w, geom).unwrap();
        let rhs: f32 = x.iter().zip(back.iter()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()));
    }

    // ---- bit arithmetic ----

    #[test]
    fn xnor_dot_equals_float_dot(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let signs_a: Vec<f32> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let signs_b: Vec<f32> = bits.iter().rev().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let expect: f32 = signs_a.iter().zip(&signs_b).map(|(&a, &b)| a * b).sum();
        let dot = BitVec::from_signs(&signs_a).xnor_dot(&BitVec::from_signs(&signs_b));
        prop_assert_eq!(dot, expect as i32);
    }

    #[test]
    fn bitvec_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let v = BitVec::from_bools(&bits);
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
        }
    }

    #[test]
    fn bitmatrix_matvec_bounds(rows in 1usize..8, cols in 1usize..64) {
        let values: Vec<f32> = (0..rows * cols).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let m = BitMatrix::from_signs(rows, cols, &values);
        let x = BitVec::from_signs(&values[..cols]);
        for acc in m.xnor_matvec(&x) {
            prop_assert!(acc.unsigned_abs() as usize <= cols);
            // Parity: dot of `cols` ±1 terms has cols' parity.
            prop_assert_eq!(acc.rem_euclid(2), (cols as i32).rem_euclid(2));
        }
    }

    // ---- FPGA models ----

    #[test]
    fn folding_meets_any_reachable_target(target in 2_000u64..5_000_000) {
        let engines = FinnTopology::paper().engines();
        let folding = FoldingSearch::new(&engines).balanced(target);
        for (cycles, spec) in folding.cycles(&engines).iter().zip(&engines) {
            let max_parallel = engine_cycles(spec, spec.weight_rows(), spec.weight_cols());
            prop_assert!(
                *cycles <= target.max(max_parallel),
                "{}: {} cycles for target {}", spec.name, cycles, target
            );
        }
    }

    #[test]
    fn divisors_divide(n in 1usize..10_000) {
        for d in divisors(n) {
            prop_assert_eq!(n % d, 0);
        }
    }

    #[test]
    fn cycle_model_monotone_in_parallelism(p in 1usize..64, s in 1usize..64) {
        let spec = EngineSpec {
            name: "test".into(),
            kind: EngineKind::Conv,
            kernel: 3,
            in_channels: 64,
            out_channels: 64,
            in_height: 16,
            in_width: 16,
            out_height: 14,
            out_width: 14,
            input_bits: 1,
            threshold_bits: 16,
            pool_after: false,
        };
        prop_assert!(engine_cycles(&spec, p + 1, s) <= engine_cycles(&spec, p, s));
        prop_assert!(engine_cycles(&spec, p, s + 1) <= engine_cycles(&spec, p, s));
    }

    #[test]
    fn allocator_never_loses_bits(depth in 1u64..10_000, width in 1u64..64, blocks in 1u64..9) {
        let alloc = allocate_array(depth, width, blocks);
        prop_assert_eq!(alloc.stored_bits, depth * width);
        if alloc.bram_18k > 0 {
            prop_assert!(alloc.bram_capacity_bits() >= alloc.stored_bits / blocks.max(1));
        }
    }

    #[test]
    fn best_partition_never_increases_bram(depth in 1u64..20_000, width in 1u64..64) {
        let naive = allocate_array(depth, width, 1);
        let best = allocate_array(depth, width, best_partition(depth, width));
        prop_assert!(best.bram_18k <= naive.bram_18k);
    }

    #[test]
    fn stream_sim_conserves_throughput_bound(
        services in proptest::collection::vec(1e-4f64..1e-2, 1..6),
        batch in 1usize..200
    ) {
        let sim = StreamSim::new(services.clone(), 2, 0.0);
        let r = sim.run(batch);
        let bottleneck = services.iter().cloned().fold(0.0f64, f64::max);
        // Can never beat the bottleneck rate; makespan at least the work
        // of the slowest stage.
        prop_assert!(r.throughput_fps <= 1.0 / bottleneck + 1e-9);
        prop_assert!(r.makespan_s >= bottleneck * batch as f64 - 1e-12);
        prop_assert!(r.first_latency_s >= services.iter().sum::<f64>() - 1e-12);
    }

    // ---- DMU / analytic models ----

    #[test]
    fn quadrants_partition_unit_mass(
        flags in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200)
    ) {
        let f: Vec<bool> = flags.iter().map(|x| x.0).collect();
        let s: Vec<bool> = flags.iter().map(|x| x.1).collect();
        let q = ConfusionQuadrants::tally(&f, &s);
        prop_assert!((q.fs + q.fbar_sbar + q.fbar_s + q.fs_bar - 1.0).abs() < 1e-9);
        prop_assert!((q.rerun_ratio() + q.fs + q.fbar_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dmu_threshold_monotone(
        weights in proptest::collection::vec(-2.0f32..2.0, 10),
        bias in -2.0f32..2.0,
        raw in proptest::collection::vec(-20.0f32..20.0, 40)
    ) {
        let dmu = Dmu::with_weights(weights, bias);
        let scores = Tensor::from_vec([4, 10], raw).unwrap();
        let lo = dmu.estimate_batch(&scores, 0.3).unwrap();
        let hi = dmu.estimate_batch(&scores, 0.8).unwrap();
        // Raising the threshold can only turn "kept" into "rerun".
        for (l, h) in lo.iter().zip(&hi) {
            prop_assert!(*l || !*h, "kept at 0.8 but rerun at 0.3");
        }
    }

    #[test]
    fn eq1_bounds(t_fp in 1e-4f64..1.0, t_bnn in 1e-4f64..1.0, r in 0.0f64..1.0) {
        let t = model::interval_per_image(t_fp, t_bnn, r);
        prop_assert!(t >= t_bnn);
        prop_assert!(t >= t_fp * r);
        prop_assert!(t <= t_bnn.max(t_fp));
    }

    #[test]
    fn eq2_exact_accuracy_is_valid_probability(
        fs in 0.0f64..1.0, fbsb in 0.0f64..1.0, fbs in 0.0f64..1.0, fsb in 0.0f64..1.0,
        host_acc in 0.0f64..1.0
    ) {
        // Normalise a random quadrant split.
        let total = fs + fbsb + fbs + fsb;
        prop_assume!(total > 1e-6);
        let q = ConfusionQuadrants {
            fs: fs / total,
            fbar_sbar: fbsb / total,
            fbar_s: fbs / total,
            fs_bar: fsb / total,
        };
        let bnn_acc = q.fs + q.fs_bar;
        let acc = model::accuracy_exact(bnn_acc, host_acc, q.rerun_ratio(), q.rerun_err_ratio());
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&acc), "acc {acc} from {q:?}");
    }
}
