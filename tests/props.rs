//! Cross-crate property tests on the system's core invariants.

use std::sync::OnceLock;

use proptest::prelude::*;

use multiprec::bnn::bits::{BitMatrix, BitVec};
use multiprec::bnn::planes::{quantize_level, PlaneMatrix, PlaneVec};
use multiprec::bnn::{BnnClassifier, HardwareBnn};
use multiprec::bnn::{EngineKind, EngineSpec, FinnTopology};
use multiprec::core::dmu::{ConfusionQuadrants, Dmu};
use multiprec::core::fault::{
    silence_injected_panics, DegradationPolicy, FaultPlan, FleetFaultPlan,
};
use multiprec::core::model;
use multiprec::core::{CascadePolicy, MultiPrecisionPipeline, PipelineTiming, RunOptions};
use multiprec::dataset::{Dataset, SynthSpec};
use multiprec::fleet::{FleetConfig, FleetSim, PredictionCache, ReplicaSpec, RoutingPolicy};
use multiprec::fpga::cycle_model::{divisors, engine_cycles};
use multiprec::fpga::device::Device;
use multiprec::fpga::folding::{EngineFolding, Folding, FoldingSearch};
use multiprec::fpga::memory::{allocate_array, best_partition};
use multiprec::fpga::stream_sim::StreamSim;
use multiprec::int::{NetworkPrecision, QuantBnn};
use multiprec::nn::train::Model;
use multiprec::nn::{Mode, Network};
use multiprec::obs::SharedRecorder;
use multiprec::serve::{BatchServer, BatcherConfig, Request};
use multiprec::tensor::conv::{col2im, im2col, ConvGeometry};
use multiprec::tensor::init::TensorRng;
use multiprec::tensor::{linalg, Parallelism, Shape, Tensor};
use multiprec::verify::{verify, Candidate, Oracle, VerifyTarget};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tensor substrate ----

    #[test]
    fn gemm_is_linear_in_first_argument(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, scale in -3.0f32..3.0
    ) {
        let a = Tensor::from_fn([m, k], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn([k, n], |i| (i as f32 * 0.3).cos());
        let scaled = a.map(|x| x * scale);
        let left = linalg::matmul(&scaled, &b).unwrap();
        let mut right = linalg::matmul(&a, &b).unwrap();
        right.scale(scale);
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2
    ) {
        let geom = ConvGeometry::new(k, stride, pad);
        prop_assume!(geom.output_dim(h) > 0 && geom.output_dim(w) > 0);
        let x = Tensor::from_fn(Shape::nchw(1, c, h, w), |i| ((i * 31) % 17) as f32 - 8.0);
        let cols = im2col(&x, geom).unwrap();
        let y = Tensor::from_fn(cols.shape().clone(), |i| ((i * 13) % 11) as f32 - 5.0);
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, c, h, w, geom).unwrap();
        let rhs: f32 = x.iter().zip(back.iter()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()));
    }

    // ---- bit arithmetic ----

    #[test]
    fn xnor_dot_equals_float_dot(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let signs_a: Vec<f32> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let signs_b: Vec<f32> = bits.iter().rev().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let expect: f32 = signs_a.iter().zip(&signs_b).map(|(&a, &b)| a * b).sum();
        let dot = BitVec::from_signs(&signs_a).xnor_dot(&BitVec::from_signs(&signs_b));
        prop_assert_eq!(dot, expect as i32);
    }

    #[test]
    fn bitvec_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let v = BitVec::from_bools(&bits);
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
        }
    }

    #[test]
    fn bitmatrix_matvec_bounds(rows in 1usize..8, cols in 1usize..64) {
        let values: Vec<f32> = (0..rows * cols).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let m = BitMatrix::from_signs(rows, cols, &values);
        let x = BitVec::from_signs(&values[..cols]);
        for acc in m.xnor_matvec(&x) {
            prop_assert!(acc.unsigned_abs() as usize <= cols);
            // Parity: dot of `cols` ±1 terms has cols' parity.
            prop_assert_eq!(acc.rem_euclid(2), (cols as i32).rem_euclid(2));
        }
    }

    // ---- FPGA models ----

    #[test]
    fn folding_meets_any_reachable_target(target in 2_000u64..5_000_000) {
        let engines = FinnTopology::paper().engines();
        let folding = FoldingSearch::new(&engines).balanced(target);
        for (cycles, spec) in folding.cycles(&engines).iter().zip(&engines) {
            let max_parallel = engine_cycles(spec, spec.weight_rows(), spec.weight_cols());
            prop_assert!(
                *cycles <= target.max(max_parallel),
                "{}: {} cycles for target {}", spec.name, cycles, target
            );
        }
    }

    #[test]
    fn divisors_divide(n in 1usize..10_000) {
        for d in divisors(n) {
            prop_assert_eq!(n % d, 0);
        }
    }

    #[test]
    fn cycle_model_monotone_in_parallelism(p in 1usize..64, s in 1usize..64) {
        let spec = EngineSpec {
            name: "test".into(),
            kind: EngineKind::Conv,
            kernel: 3,
            in_channels: 64,
            out_channels: 64,
            in_height: 16,
            in_width: 16,
            out_height: 14,
            out_width: 14,
            input_bits: 1,
            threshold_bits: 16,
            pool_after: false,
        };
        prop_assert!(engine_cycles(&spec, p + 1, s) <= engine_cycles(&spec, p, s));
        prop_assert!(engine_cycles(&spec, p, s + 1) <= engine_cycles(&spec, p, s));
    }

    #[test]
    fn allocator_never_loses_bits(depth in 1u64..10_000, width in 1u64..64, blocks in 1u64..9) {
        let alloc = allocate_array(depth, width, blocks);
        prop_assert_eq!(alloc.stored_bits, depth * width);
        if alloc.bram_18k > 0 {
            prop_assert!(alloc.bram_capacity_bits() >= alloc.stored_bits / blocks.max(1));
        }
    }

    #[test]
    fn best_partition_never_increases_bram(depth in 1u64..20_000, width in 1u64..64) {
        let naive = allocate_array(depth, width, 1);
        let best = allocate_array(depth, width, best_partition(depth, width));
        prop_assert!(best.bram_18k <= naive.bram_18k);
    }

    #[test]
    fn stream_sim_conserves_throughput_bound(
        services in proptest::collection::vec(1e-4f64..1e-2, 1..6),
        batch in 1usize..200
    ) {
        let sim = StreamSim::new(services.clone(), 2, 0.0);
        let r = sim.run(batch);
        let bottleneck = services.iter().cloned().fold(0.0f64, f64::max);
        // Can never beat the bottleneck rate; makespan at least the work
        // of the slowest stage.
        prop_assert!(r.throughput_fps <= 1.0 / bottleneck + 1e-9);
        prop_assert!(r.makespan_s >= bottleneck * batch as f64 - 1e-12);
        prop_assert!(r.first_latency_s >= services.iter().sum::<f64>() - 1e-12);
    }

    // ---- DMU / analytic models ----

    #[test]
    fn quadrants_partition_unit_mass(
        flags in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200)
    ) {
        let f: Vec<bool> = flags.iter().map(|x| x.0).collect();
        let s: Vec<bool> = flags.iter().map(|x| x.1).collect();
        let q = ConfusionQuadrants::tally(&f, &s);
        prop_assert!((q.fs + q.fbar_sbar + q.fbar_s + q.fs_bar - 1.0).abs() < 1e-9);
        prop_assert!((q.rerun_ratio() + q.fs + q.fbar_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dmu_threshold_monotone(
        weights in proptest::collection::vec(-2.0f32..2.0, 10),
        bias in -2.0f32..2.0,
        raw in proptest::collection::vec(-20.0f32..20.0, 40)
    ) {
        let dmu = Dmu::with_weights(weights, bias);
        let scores = Tensor::from_vec([4, 10], raw).unwrap();
        let lo = dmu.estimate_batch(&scores, 0.3).unwrap();
        let hi = dmu.estimate_batch(&scores, 0.8).unwrap();
        // Raising the threshold can only turn "kept" into "rerun".
        for (l, h) in lo.iter().zip(&hi) {
            prop_assert!(*l || !*h, "kept at 0.8 but rerun at 0.3");
        }
    }

    #[test]
    fn eq1_bounds(t_fp in 1e-4f64..1.0, t_bnn in 1e-4f64..1.0, r in 0.0f64..1.0) {
        let t = model::interval_per_image(t_fp, t_bnn, r);
        prop_assert!(t >= t_bnn);
        prop_assert!(t >= t_fp * r);
        prop_assert!(t <= t_bnn.max(t_fp));
    }

    #[test]
    fn eq2_exact_accuracy_is_valid_probability(
        fs in 0.0f64..1.0, fbsb in 0.0f64..1.0, fbs in 0.0f64..1.0, fsb in 0.0f64..1.0,
        host_acc in 0.0f64..1.0
    ) {
        // Normalise a random quadrant split.
        let total = fs + fbsb + fbs + fsb;
        prop_assume!(total > 1e-6);
        let q = ConfusionQuadrants {
            fs: fs / total,
            fbar_sbar: fbsb / total,
            fbar_s: fbs / total,
            fs_bar: fsb / total,
        };
        let bnn_acc = q.fs + q.fs_bar;
        let acc = model::accuracy_exact(bnn_acc, host_acc, q.rerun_ratio(), q.rerun_err_ratio());
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&acc), "acc {acc} from {q:?}");
    }
}

// ---- chaos: fault injection and graceful degradation ----

/// Trained-once components shared across chaos cases.
fn chaos_fixture() -> &'static (HardwareBnn, Dmu, Dataset) {
    static FIXTURE: OnceLock<(HardwareBnn, Dmu, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = TensorRng::seed_from(2018);
        let mut bnn =
            BnnClassifier::new(multiprec::bnn::FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
        for _ in 0..3 {
            let x = rng.normal(multiprec::tensor::Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
            bnn.forward_mode(&x, Mode::Train).unwrap();
        }
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let dmu = Dmu::with_weights(vec![0.1; 10], 0.0);
        let data = SynthSpec::tiny().generate(40).unwrap();
        (hw, dmu, data)
    })
}

fn chaos_host() -> Network {
    let mut rng = TensorRng::seed_from(77);
    Network::builder(multiprec::tensor::Shape::nchw(1, 3, 8, 8))
        .conv2d(8, 3, 1, 1, &mut rng)
        .unwrap()
        .relu()
        .global_avg_pool()
        .linear(10, &mut rng)
        .unwrap()
        .build()
}

fn chaos_timing() -> PipelineTiming {
    PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, 10)
}

fn chaos_opts(plan: FaultPlan, policy: DegradationPolicy) -> RunOptions<'static> {
    RunOptions::new(chaos_timing())
        .with_host_accuracy(0.5)
        .with_faults(plan)
        .with_degradation(policy)
}

/// Deterministic edges of the overlapped executor: an empty dataset and
/// one smaller than both the pipeline block and the BNN's internal
/// `IMG_BLOCK` (8) stay bit-identical to Modeled.
#[test]
fn overlapped_executor_handles_empty_and_sub_block_datasets() {
    let (hw, dmu, data) = chaos_fixture();
    let pipeline = MultiPrecisionPipeline::new(hw, dmu, 0.9);
    let policy = DegradationPolicy::default();
    for n in [0usize, 5] {
        let subset = data.take(n).unwrap();
        let host = chaos_host();
        let modeled = pipeline
            .execute(
                &host,
                &subset,
                &RunOptions::new(chaos_timing())
                    .with_host_accuracy(0.5)
                    .modeled(),
            )
            .unwrap();
        let host = chaos_host();
        let threaded = pipeline
            .execute(
                &host,
                &subset,
                &RunOptions::new(chaos_timing())
                    .with_host_accuracy(0.5)
                    .with_faults(FaultPlan::none())
                    .with_degradation(policy),
            )
            .unwrap();
        assert_eq!(threaded.total_images, n);
        assert_eq!(threaded.predictions, modeled.predictions, "n={n}");
        assert_eq!(threaded.flagged, modeled.flagged, "n={n}");
        assert_eq!(threaded.rerun_count, modeled.rerun_count, "n={n}");
        assert_eq!(threaded.degraded_count, 0);
        assert!(threaded.fault_log.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chaos_every_image_always_predicted(
        error_rate in 0.0f64..1.0,
        spike_rate in 0.0f64..0.5,
        death in proptest::option::of(0usize..30),
        threshold in 0.3f32..1.0
    ) {
        silence_injected_panics();
        let (hw, dmu, data) = chaos_fixture();
        let host = chaos_host();
        let mut plan = FaultPlan::seeded(9)
            .with_host_error_rate(error_rate)
            .with_host_spikes(spike_rate, 10.0);
        if let Some(after) = death {
            plan = plan.with_host_death_after(after);
        }
        let r = MultiPrecisionPipeline::new(hw, dmu, threshold)
            .execute(&host, data, &chaos_opts(plan, DegradationPolicy::default()))
            .expect("recoverable faults must not surface as errors");
        prop_assert_eq!(r.predictions.len(), r.total_images);
        prop_assert!(r.predictions.iter().all(|&p| p < 10));
        prop_assert!((0.0..=1.0).contains(&r.accuracy));
        prop_assert!(r.degraded_count <= r.total_images);
    }

    #[test]
    fn chaos_accuracy_floor_holds(
        error_rate in 0.0f64..1.0,
        threshold in 0.3f32..1.0
    ) {
        let (hw, dmu, data) = chaos_fixture();
        let pipeline = MultiPrecisionPipeline::new(hw, dmu, threshold);
        let policy = DegradationPolicy::default();
        let host = chaos_host();
        let clean = pipeline
            .execute(&host, data, &chaos_opts(FaultPlan::none(), policy))
            .unwrap();
        let host = chaos_host();
        let plan = FaultPlan::seeded(13).with_host_error_rate(error_rate);
        let faulty = pipeline
            .execute(&host, data, &chaos_opts(plan, policy))
            .unwrap();
        let n = faulty.total_images as f64;
        // Faults only change degraded images, each worth at most 1/n of
        // accuracy relative to the fault-free run…
        let degraded_frac = faulty.degraded_count as f64 / n;
        prop_assert!(
            faulty.accuracy >= clean.accuracy - degraded_frac - 1e-9,
            "acc {} vs clean {} with {:.3} degraded",
            faulty.accuracy, clean.accuracy, degraded_frac
        );
        // …and only rerun images can ever fall back, so the BNN floor
        // minus the rerun fraction bounds any run from below.
        let rerun_frac = faulty.rerun_count as f64 / n;
        prop_assert!(faulty.accuracy >= faulty.bnn_accuracy - rerun_frac - 1e-9);
    }

    /// The cascade API's subsumption contract under chaos:
    /// `CascadePolicy::dmu(t)` must be bit-identical to the legacy
    /// constructor threshold `t` — predictions, flags, degradation and
    /// fault accounting alike — for any threshold and fault plan. The
    /// cascade run deliberately uses a *different* constructor threshold
    /// to prove the policy, not the constructor, decides.
    #[test]
    fn chaos_dmu_cascade_bit_identical_to_legacy_threshold(
        error_rate in 0.0f64..1.0,
        spike_rate in 0.0f64..0.5,
        threshold in 0.0f32..1.0,
        seed in any::<u64>()
    ) {
        let (hw, dmu, data) = chaos_fixture();
        let policy = DegradationPolicy::default();
        let plan = FaultPlan::seeded(seed)
            .with_host_error_rate(error_rate)
            .with_host_spikes(spike_rate, 10.0);
        let host = chaos_host();
        let legacy = MultiPrecisionPipeline::new(hw, dmu, threshold)
            .execute(&host, data, &chaos_opts(plan.clone(), policy))
            .unwrap();
        let host = chaos_host();
        let cascade = MultiPrecisionPipeline::new(hw, dmu, 0.5)
            .execute(
                &host,
                data,
                &chaos_opts(plan, policy).with_cascade(CascadePolicy::dmu(threshold)),
            )
            .unwrap();
        prop_assert_eq!(&legacy.predictions, &cascade.predictions);
        prop_assert_eq!(&legacy.flagged, &cascade.flagged);
        prop_assert_eq!(legacy.accuracy, cascade.accuracy);
        prop_assert_eq!(legacy.rerun_count, cascade.rerun_count);
        prop_assert_eq!(legacy.degraded_count, cascade.degraded_count);
        prop_assert_eq!(legacy.retries, cascade.retries);
        prop_assert_eq!(legacy.host_attempts, cascade.host_attempts);
        prop_assert_eq!(legacy.breaker_trips, cascade.breaker_trips);
        prop_assert_eq!(legacy.modeled_time_s, cascade.modeled_time_s);
        prop_assert_eq!(
            serde_json::to_string(&legacy.fault_log).unwrap(),
            serde_json::to_string(&cascade.fault_log).unwrap()
        );
        prop_assert_eq!(&legacy.stage_traffic, &cascade.stage_traffic);
    }

    /// ROADMAP item 4's executor contract: the overlapped block-pipelined
    /// Threaded executor is bit-identical to Modeled — predictions,
    /// flags, rerun/degraded partition, stage traffic — for any
    /// threshold and block size (including blocks that do not divide n
    /// and blocks larger than n), and under faults it still degrades
    /// only flagged images while keeping a deterministic fault log.
    #[test]
    fn chaos_overlapped_threaded_bit_identical_to_modeled(
        threshold in 0.0f32..1.0,
        block in 1usize..48,
        error_rate in 0.0f64..1.0,
        death in proptest::option::of(0usize..30),
        seed in any::<u64>()
    ) {
        silence_injected_panics();
        let (hw, dmu, data) = chaos_fixture();
        let timing = PipelineTiming::new(1.0 / 430.0, 1.0 / 30.0, block);
        let pipeline = MultiPrecisionPipeline::new(hw, dmu, threshold);
        let policy = DegradationPolicy::default();
        let host = chaos_host();
        let modeled = pipeline
            .execute(
                &host,
                data,
                &RunOptions::new(timing).with_host_accuracy(0.5).modeled(),
            )
            .unwrap();
        // Fault-free overlapped run: fully bit-identical to Modeled.
        let host = chaos_host();
        let clean = pipeline
            .execute(
                &host,
                data,
                &RunOptions::new(timing)
                    .with_host_accuracy(0.5)
                    .with_faults(FaultPlan::none())
                    .with_degradation(policy),
            )
            .unwrap();
        prop_assert_eq!(&clean.predictions, &modeled.predictions);
        prop_assert_eq!(&clean.flagged, &modeled.flagged);
        prop_assert_eq!(clean.rerun_count, modeled.rerun_count);
        prop_assert_eq!(clean.degraded_count, 0);
        prop_assert_eq!(clean.accuracy, modeled.accuracy);
        prop_assert_eq!(clean.bnn_accuracy, modeled.bnn_accuracy);
        prop_assert_eq!(clean.host_subset_accuracy, modeled.host_subset_accuracy);
        prop_assert_eq!(clean.quadrants, modeled.quadrants);
        prop_assert_eq!(&clean.stage_traffic, &modeled.stage_traffic);
        prop_assert!(clean.fault_log.is_empty());
        // Faulted overlapped run: the flags are BNN+DMU state computed
        // before any host fault can act, so they never change; the
        // flagged set partitions exactly into reruns and degradations;
        // kept images keep their modeled predictions; and the whole run
        // — fault log included — is deterministic per plan.
        let mut plan = FaultPlan::seeded(seed).with_host_error_rate(error_rate);
        if let Some(after) = death {
            plan = plan.with_host_death_after(after);
        }
        let faulted_opts = || RunOptions::new(timing)
            .with_host_accuracy(0.5)
            .with_faults(plan.clone())
            .with_degradation(policy);
        let host = chaos_host();
        let faulty = pipeline.execute(&host, data, &faulted_opts()).unwrap();
        prop_assert_eq!(&faulty.flagged, &modeled.flagged);
        let flagged_count = faulty.flagged.iter().filter(|&&f| f).count();
        prop_assert_eq!(faulty.rerun_count + faulty.degraded_count, flagged_count);
        for i in 0..faulty.predictions.len() {
            if !faulty.flagged[i] {
                prop_assert_eq!(
                    faulty.predictions[i], modeled.predictions[i],
                    "kept image {} must keep its BNN prediction", i
                );
            }
        }
        let host = chaos_host();
        let again = pipeline.execute(&host, data, &faulted_opts()).unwrap();
        prop_assert_eq!(&again.predictions, &faulty.predictions);
        prop_assert_eq!(again.degraded_count, faulty.degraded_count);
        prop_assert_eq!(
            serde_json::to_string(&again.fault_log).unwrap(),
            serde_json::to_string(&faulty.fault_log).unwrap()
        );
    }

    #[test]
    fn chaos_fault_log_is_byte_identical_per_seed(
        seed in any::<u64>(),
        error_rate in 0.0f64..1.0
    ) {
        let (hw, dmu, data) = chaos_fixture();
        let pipeline = MultiPrecisionPipeline::new(hw, dmu, 0.9);
        let policy = DegradationPolicy::default();
        let plan = FaultPlan::seeded(seed)
            .with_host_error_rate(error_rate)
            .with_host_spikes(0.1, 10.0);
        let host = chaos_host();
        let a = pipeline
            .execute(&host, data, &chaos_opts(plan.clone(), policy))
            .unwrap();
        let host = chaos_host();
        let b = pipeline
            .execute(&host, data, &chaos_opts(plan, policy))
            .unwrap();
        let log_a = serde_json::to_string(&a.fault_log).unwrap();
        let log_b = serde_json::to_string(&b.fault_log).unwrap();
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(a.predictions, b.predictions);
        prop_assert_eq!(a.degraded_count, b.degraded_count);
        prop_assert_eq!(a.retries, b.retries);
        prop_assert_eq!(a.breaker_trips, b.breaker_trips);
    }

    /// The redesigned run API's core contract: recording is strictly
    /// passive. A fully instrumented run (`SharedRecorder`) and the
    /// default null-recorder run must produce identical
    /// `PipelineResult`s — predictions, fault log, degradation
    /// accounting — under the same seed, chaos plan included. Only the
    /// wall clock (`wall_seconds`) and channel-timing-dependent
    /// `backpressure_events` may differ between the two runs.
    #[test]
    fn obs_recording_is_passive_under_chaos(
        error_rate in 0.0f64..1.0,
        spike_rate in 0.0f64..0.5,
        threshold in 0.3f32..1.0,
        seed in any::<u64>()
    ) {
        let (hw, dmu, data) = chaos_fixture();
        let pipeline = MultiPrecisionPipeline::new(hw, dmu, threshold);
        let policy = DegradationPolicy::default();
        let plan = FaultPlan::seeded(seed)
            .with_host_error_rate(error_rate)
            .with_host_spikes(spike_rate, 10.0);
        let host = chaos_host();
        let null_run = pipeline
            .execute(&host, data, &chaos_opts(plan.clone(), policy))
            .unwrap();
        let rec = SharedRecorder::new();
        let host = chaos_host();
        let obs_run = pipeline
            .execute(&host, data, &chaos_opts(plan, policy).with_recorder(&rec))
            .unwrap();
        prop_assert_eq!(&null_run.predictions, &obs_run.predictions);
        prop_assert_eq!(
            serde_json::to_string(&null_run.fault_log).unwrap(),
            serde_json::to_string(&obs_run.fault_log).unwrap()
        );
        prop_assert_eq!(null_run.accuracy, obs_run.accuracy);
        prop_assert_eq!(null_run.quadrants, obs_run.quadrants);
        prop_assert_eq!(null_run.rerun_count, obs_run.rerun_count);
        prop_assert_eq!(null_run.degraded_count, obs_run.degraded_count);
        prop_assert_eq!(null_run.retries, obs_run.retries);
        prop_assert_eq!(null_run.host_attempts, obs_run.host_attempts);
        prop_assert_eq!(null_run.breaker_trips, obs_run.breaker_trips);
        prop_assert_eq!(null_run.host_subset_accuracy, obs_run.host_subset_accuracy);
        // And the record the run left behind is schema-valid with
        // counters that mirror the result.
        let report = rec.report();
        prop_assert!(multiprec::obs::schema::validate_report(&report).is_ok());
        prop_assert_eq!(
            report.counter(multiprec::obs::schema::CTR_IMAGES),
            obs_run.total_images as u64
        );
        prop_assert_eq!(
            report.counter(multiprec::obs::schema::CTR_DEGRADED),
            obs_run.degraded_count as u64
        );
    }

    // ---- data-parallel batched inference ----

    #[test]
    fn parallel_batched_inference_bit_identical_to_per_image(
        n in 1usize..9,
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        let host = chaos_host();
        let mut rng = TensorRng::seed_from(seed);
        let batch = rng.normal(Shape::nchw(n, 3, 8, 8), 0.0, 1.0);
        // Reference: one image at a time through the workspace engine
        // (itself bit-identical to `forward` in Infer mode, tested in
        // mp-nn).
        let mut reference: Vec<f32> = Vec::new();
        for i in 0..n {
            let img = batch.batch_item(i).unwrap();
            reference.extend(host.infer(&img).unwrap().iter());
        }
        let sharded = host
            .infer_batch_with(&batch, Parallelism::new(threads))
            .unwrap();
        prop_assert_eq!(sharded.as_slice(), &reference[..]);
    }

    #[test]
    fn chaos_fault_accounting_invariant_under_parallelism(
        error_rate in 0.0f64..1.0,
        spike_rate in 0.0f64..0.5,
        threads in 2usize..6,
        seed in any::<u64>()
    ) {
        let (hw, dmu, data) = chaos_fixture();
        let policy = DegradationPolicy::default();
        let plan = FaultPlan::seeded(seed)
            .with_host_error_rate(error_rate)
            .with_host_spikes(spike_rate, 10.0);
        let host = chaos_host();
        let seq = MultiPrecisionPipeline::new(hw, dmu, 0.9)
            .execute(&host, data, &chaos_opts(plan.clone(), policy))
            .unwrap();
        let par = MultiPrecisionPipeline::new(hw, dmu, 0.9)
            .with_parallelism(Parallelism::new(threads))
            .execute(&host, data, &chaos_opts(plan, policy))
            .unwrap();
        // Sharding the deferred host batches must not perturb fault
        // accounting or predictions in any way.
        let log_seq = serde_json::to_string(&seq.fault_log).unwrap();
        let log_par = serde_json::to_string(&par.fault_log).unwrap();
        prop_assert_eq!(log_seq, log_par);
        prop_assert_eq!(seq.predictions, par.predictions);
        prop_assert_eq!(seq.degraded_count, par.degraded_count);
        prop_assert_eq!(seq.retries, par.retries);
        prop_assert_eq!(seq.host_attempts, par.host_attempts);
        prop_assert_eq!(seq.breaker_trips, par.breaker_trips);
    }
}

// ---- mp-verify: static interval soundness ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Soundness contract of mp-verify's abstract interpretation: every
    /// accumulator value the bit-exact hardware model observes at
    /// runtime — including for images far outside the training
    /// distribution, which the first stage must clamp — lies inside the
    /// interval derived statically from fan-in and input width alone.
    #[test]
    fn verify_static_intervals_contain_runtime_accumulators(
        seed in any::<u64>(), mean in -4.0f32..4.0, sigma in 0.01f32..16.0
    ) {
        let (hw, _, _) = chaos_fixture();
        let mut rng = TensorRng::seed_from(seed);
        let image = rng.normal(multiprec::tensor::Shape::nchw(1, 3, 8, 8), mean, sigma);
        let (scores, ranges) = hw.infer_image_traced(&image).unwrap();
        // Tracing must not perturb the scores themselves.
        prop_assert_eq!(&scores, &hw.infer_image(&image).unwrap());
        let summaries = hw.stage_summaries();
        prop_assert_eq!(ranges.len(), summaries.len());
        for (stage, (range, summary)) in ranges.iter().zip(&summaries).enumerate() {
            prop_assert!(!range.is_empty(), "stage {} observed no accumulations", stage);
            let bound = multiprec::verify::interval::accumulator_interval(
                summary.fan_in,
                if summary.first { 8 } else { 1 },
            ).expect("fixture fan-ins are small");
            prop_assert!(
                bound.contains(range.min) && bound.contains(range.max),
                "stage {}: runtime range [{}, {}] escapes static interval [{}, {}]",
                stage, range.min, range.max, bound.lo, bound.hi
            );
        }
    }
}

// ---- mp-serve: dynamic batching is latency-only ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The serving layer's core contract: batching decisions (driven by
    /// arrival gaps, `max_batch`, `max_delay_s` and queue pressure) may
    /// only move *when* an image is classified, never *what* it is
    /// classified as. Every served prediction must be bit-identical to
    /// a single dataset-mode `execute` over the same images, and shed
    /// requests must never be silently counted as served.
    #[test]
    fn serve_predictions_bit_identical_to_dataset_execute(
        gaps in proptest::collection::vec(0.0f64..0.02, 1..40),
        max_batch in 1usize..9,
        max_delay_ms in 0.0f64..10.0,
        queue_capacity in 1usize..32
    ) {
        let (hw, dmu, data) = chaos_fixture();
        let host = chaos_host();
        let pipeline = MultiPrecisionPipeline::new(hw, dmu, 0.5);
        let cfg = BatcherConfig::try_new(max_batch, max_delay_ms * 1e-3, queue_capacity)
            .expect("generated config is valid");
        let server = BatchServer::new(&pipeline, &host, data, cfg);
        let mut t = 0.0f64;
        let trace: Vec<Request> = gaps
            .iter()
            .enumerate()
            .map(|(i, g)| {
                t += g;
                Request::new(i as u64, (i * 7) % data.len(), t)
            })
            .collect();
        let opts = RunOptions::new(chaos_timing()).with_host_accuracy(0.5);
        let report = server.serve(&trace, &opts).unwrap();
        let whole = pipeline.execute(&host, data, &opts).unwrap();
        for c in &report.completions {
            prop_assert_eq!(
                c.prediction,
                whole.predictions[c.image],
                "request {} (image {}) diverged from the dataset-mode run",
                c.id,
                c.image
            );
        }
        // Served and shed partition the trace exactly: nothing lost,
        // nothing double-counted, no shed id among the completions.
        prop_assert_eq!(report.served() + report.shed.len(), trace.len());
        let served_ids: std::collections::HashSet<u64> =
            report.completions.iter().map(|c| c.id).collect();
        prop_assert_eq!(served_ids.len(), report.served());
        for id in &report.shed {
            prop_assert!(!served_ids.contains(id), "shed request {} also served", id);
        }
        // Timeline sanity: causality per request, batch sizes within
        // bounds, virtual clock monotone across batches.
        for c in &report.completions {
            prop_assert!(c.dispatch_s >= c.arrival_s);
            prop_assert!(c.completion_s >= c.dispatch_s);
        }
        for b in &report.batches {
            prop_assert!(b.size >= 1 && b.size <= max_batch);
        }
        for w in report.batches.windows(2) {
            prop_assert!(w[1].dispatch_s >= w[0].completion_s - 1e-12);
        }
    }
}

// ---- mp-fleet: exactly-once delivery and deterministic replay ----

/// A fabricated functional ground truth: fleet behaviour is independent
/// of how the cache was produced, so property tests skip training.
fn fleet_cache() -> PredictionCache {
    PredictionCache::new(
        (0..16).map(|i| i % 10).collect(),
        (0..16).map(|i| i % 3 == 0).collect(),
    )
    .unwrap()
}

fn fleet_fixture(policy: RoutingPolicy, queue_capacity: usize, hedge: bool) -> FleetSim {
    let timing = PipelineTiming::new(0.001, 0.01, 4);
    let specs = vec![
        ReplicaSpec::fpga("f0", timing, 4, 0.002, queue_capacity).unwrap(),
        ReplicaSpec::fpga("f1", timing, 4, 0.002, queue_capacity).unwrap(),
        ReplicaSpec::host_only("h0", 0.01, 4, 0.002, queue_capacity).unwrap(),
    ];
    let mut cfg = FleetConfig::new(policy).with_deadline_s(0.05);
    if hedge {
        cfg = cfg.with_hedge_after_s(0.04);
    }
    FleetSim::new(specs, cfg, fleet_cache()).unwrap()
}

fn fleet_trace(gaps: &[f64]) -> Vec<multiprec::serve::Request> {
    let mut t = 0.0f64;
    gaps.iter()
        .enumerate()
        .map(|(i, g)| {
            t += g;
            multiprec::serve::Request::new(i as u64, (i * 7) % 16, t)
        })
        .collect()
}

/// Sorted (served ∪ shed) ids of a fleet run.
fn fleet_outcome_ids(report: &multiprec::fleet::FleetReport) -> Vec<u64> {
    let mut ids: Vec<u64> = report
        .completions
        .iter()
        .map(|c| c.id)
        .chain(report.shed.iter().copied())
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once under arbitrary fault schedules: whatever mix of
    /// crashes, recoveries, slowdowns and hedging the run endures,
    /// served ∪ shed must partition the offered ids — the same
    /// partition universe as the fault-free run — with no id lost,
    /// duplicated, or invented, and every served prediction identical
    /// to the functional ground truth.
    #[test]
    fn fleet_faulted_and_fault_free_runs_partition_the_same_ids(
        gaps in proptest::collection::vec(0.0f64..0.01, 1..80),
        policy_sel in 0usize..3,
        kills in 0usize..3,
        slow_replica in 0usize..3,
        seed in any::<u64>(),
        hedge in any::<bool>(),
        queue_capacity in 1usize..24
    ) {
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::PrecisionAware,
        ][policy_sel];
        let sim = fleet_fixture(policy, queue_capacity, hedge);
        let trace = fleet_trace(&gaps);
        let horizon = trace.last().unwrap().arrival_s.max(0.01);
        let plan = FleetFaultPlan::seeded(seed)
            .with_random_kills(3, horizon, kills, 0.2 * horizon)
            .with_slowdown(slow_replica, 0.5 * horizon, 20.0)
            .with_restore(slow_replica, 0.8 * horizon);
        let clean = sim
            .run(&trace, &FleetFaultPlan::none(), &multiprec::obs::NULL_RECORDER)
            .unwrap();
        let faulted = sim
            .run(&trace, &plan, &multiprec::obs::NULL_RECORDER)
            .unwrap();
        let offered: Vec<u64> = trace.iter().map(|r| r.id).collect();
        prop_assert_eq!(&fleet_outcome_ids(&clean), &offered);
        prop_assert_eq!(&fleet_outcome_ids(&faulted), &offered);
        prop_assert_eq!(clean.served() + clean.shed.len(), trace.len());
        prop_assert_eq!(faulted.served() + faulted.shed.len(), trace.len());
        let cache = fleet_cache();
        for c in clean.completions.iter().chain(&faulted.completions) {
            prop_assert_eq!(c.prediction, cache.prediction(c.image));
            prop_assert!(c.dispatch_s >= c.arrival_s);
            prop_assert!(c.completion_s > c.dispatch_s);
        }
    }

    /// Deterministic replay: the same seed reproduces the whole run —
    /// every `fleet.*` counter the recorder sees and every per-request
    /// latency — byte for byte.
    #[test]
    fn fleet_same_seed_means_identical_counters_and_latencies(
        gaps in proptest::collection::vec(0.0f64..0.01, 1..60),
        kills in 0usize..3,
        seed in any::<u64>(),
        hedge in any::<bool>()
    ) {
        let sim = fleet_fixture(RoutingPolicy::JoinShortestQueue, 16, hedge);
        let trace = fleet_trace(&gaps);
        let horizon = trace.last().unwrap().arrival_s.max(0.01);
        let plan = FleetFaultPlan::seeded(seed)
            .with_random_kills(3, horizon, kills, 0.2 * horizon);
        let rec_a = SharedRecorder::new();
        let rec_b = SharedRecorder::new();
        let a = sim.run(&trace, &plan, &rec_a).unwrap();
        let b = sim.run(&trace, &plan, &rec_b).unwrap();
        prop_assert_eq!(&a, &b, "same seed must replay the whole report");
        let fleet_counters = |rec: &SharedRecorder| -> Vec<(String, u64)> {
            rec.report()
                .counters
                .iter()
                .filter(|c| c.name.starts_with("fleet."))
                .map(|c| (c.name.clone(), c.value))
                .collect()
        };
        prop_assert_eq!(fleet_counters(&rec_a), fleet_counters(&rec_b));
        let latencies = |r: &multiprec::fleet::FleetReport| -> Vec<(u64, f64)> {
            r.completions.iter().map(|c| (c.id, c.latency_s())).collect()
        };
        prop_assert_eq!(latencies(&a), latencies(&b));
    }
}

// ---- mp-int: multi-plane arithmetic and the precision corners ----

/// Trained-once pair for the precision-corner identity: the optimized
/// XNOR-popcount hardware view and the multi-plane quantized path at
/// `NetworkPrecision::one_bit`, built from the same classifier.
fn quant_corner_fixture() -> &'static (HardwareBnn, QuantBnn) {
    static FIXTURE: OnceLock<(HardwareBnn, QuantBnn)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = TensorRng::seed_from(4018);
        let mut bnn =
            BnnClassifier::new(multiprec::bnn::FinnTopology::scaled(8, 8, 8), &mut rng).unwrap();
        for _ in 0..3 {
            let x = rng.normal(multiprec::tensor::Shape::nchw(8, 3, 8, 8), 0.0, 1.0);
            bnn.forward_mode(&x, Mode::Train).unwrap();
        }
        let hw = HardwareBnn::from_classifier(&bnn).unwrap();
        let layers = bnn.export_latent().len();
        let quant = QuantBnn::from_classifier(
            &bnn,
            NetworkPrecision::one_bit(layers).expect("1-bit precision"),
        )
        .unwrap();
        (hw, quant)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The packed multi-plane dot product — shift-add over bit planes of
    /// XNOR-popcounts — must agree exactly with the scalar i64 reference
    /// over quantized levels, for every `(a_bits, w_bits)` pairing from
    /// `{2, 4, 8}²`.
    #[test]
    fn plane_dot_matches_integer_reference(
        xs in proptest::collection::vec(-1.5f32..1.5, 1..64),
        ws in proptest::collection::vec(-1.5f32..1.5, 1..64),
        a_sel in 0usize..3, w_sel in 0usize..3
    ) {
        let (a_bits, w_bits) = ([2usize, 4, 8][a_sel], [2usize, 4, 8][w_sel]);
        let n = xs.len().min(ws.len());
        let x = PlaneVec::from_floats(&xs[..n], a_bits);
        let w = PlaneVec::from_floats(&ws[..n], w_bits);
        let reference: i64 = xs[..n]
            .iter()
            .zip(&ws[..n])
            .map(|(&a, &b)| quantize_level(a, a_bits) * quantize_level(b, w_bits))
            .sum();
        prop_assert_eq!(x.dot(&w), reference);
        // Packing must round-trip the quantized levels themselves.
        let levels: Vec<i64> = xs[..n].iter().map(|&v| quantize_level(v, a_bits)).collect();
        prop_assert_eq!(x.to_levels(), levels);
    }

    /// Same contract at GEMV granularity: `PlaneMatrix::matvec` is the
    /// row-wise plane dot product, so every output must equal the dense
    /// i64 reference GEMM row.
    #[test]
    fn plane_matvec_matches_reference_gemm(
        rows in 1usize..7, cols in 1usize..20,
        wdata in proptest::collection::vec(-2.0f32..2.0, 140),
        xdata in proptest::collection::vec(-2.0f32..2.0, 20),
        a_sel in 0usize..3, w_sel in 0usize..3
    ) {
        let (a_bits, w_bits) = ([2usize, 4, 8][a_sel], [2usize, 4, 8][w_sel]);
        let wvals = &wdata[..rows * cols];
        let xvals = &xdata[..cols];
        let m = PlaneMatrix::from_floats(rows, cols, wvals, w_bits);
        let x = PlaneVec::from_floats(xvals, a_bits);
        let y = m.matvec(&x);
        prop_assert_eq!(y.len(), rows);
        for (r, &got) in y.iter().enumerate() {
            let reference: i64 = (0..cols)
                .map(|c| {
                    quantize_level(wvals[r * cols + c], w_bits)
                        * quantize_level(xvals[c], a_bits)
                })
                .sum();
            prop_assert_eq!(got, reference, "row {} diverged from reference", r);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The precision axis is anchored at its low end: the multi-plane
    /// quantized path at `NetworkPrecision::one_bit` must be
    /// bit-identical — scores included, not just argmaxes — to the
    /// optimized XNOR-popcount fast path, for any input distribution and
    /// any worker-thread count.
    #[test]
    fn quant_one_bit_corner_matches_bnn_fast_path(
        seed in any::<u64>(), n in 1usize..7, threads in 1usize..5,
        mean in -2.0f32..2.0, sigma in 0.05f32..4.0
    ) {
        let (hw, quant) = quant_corner_fixture();
        let mut rng = TensorRng::seed_from(seed);
        let batch = rng.normal(multiprec::tensor::Shape::nchw(n, 3, 8, 8), mean, sigma);
        let fast = hw.infer_batch_with(&batch, Parallelism::new(threads)).unwrap();
        let q = quant
            .infer_batch_obs(&batch, Parallelism::new(threads), &multiprec::obs::NULL_RECORDER)
            .unwrap();
        prop_assert_eq!(quant.scores_scale(), 1.0);
        prop_assert_eq!(fast.shape(), q.shape());
        prop_assert_eq!(fast.as_slice(), q.as_slice());
    }
}

/// Shared oracles over the paper topology for the agreement property:
/// one strict (shipped-design budgets are errors) and one exploratory
/// (budgets soften to warnings), so both severity policies are covered.
fn paper_oracles() -> &'static std::sync::Mutex<(Oracle, Oracle)> {
    static ORACLES: OnceLock<std::sync::Mutex<(Oracle, Oracle)>> = OnceLock::new();
    ORACLES.get_or_init(|| {
        let topo = FinnTopology::paper();
        let strict = VerifyTarget::from_topology("props-strict", &topo, Device::zc702());
        let exploratory =
            VerifyTarget::from_topology("props-exploratory", &topo, Device::zu3eg()).exploratory();
        std::sync::Mutex::new((Oracle::new(&strict), Oracle::new(&exploratory)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fast in-memory feasibility oracle must agree with the full
    /// batch verifier on the error-severity verdict for *any* candidate:
    /// `Oracle::check` says Feasible exactly when `verify` over the
    /// reconstructed target reports zero errors. Candidates are drawn
    /// adversarially — per-engine `(P, S)` including zeros (degenerate)
    /// and non-divisors (illegal folds), crossed with no precision, a
    /// valid uniform profile, the explicit 1-bit profile, and a
    /// wrong-length profile — under both the strict and the exploratory
    /// severity policies.
    #[test]
    fn oracle_verdict_agrees_with_full_verifier(
        ps in proptest::collection::vec((0usize..40, 0usize..40), 9),
        precision_sel in 0usize..4,
        a_sel in 0usize..3, w_sel in 0usize..3,
        strict in any::<bool>()
    ) {
        let mut guard = paper_oracles().lock().unwrap();
        let oracle = if strict { &mut guard.0 } else { &mut guard.1 };
        let n = oracle.engines().len();
        prop_assert_eq!(n, 9, "paper chain depth changed; widen the ps vector");
        let folding = Folding::new_unchecked(
            ps.iter().map(|&(p, s)| EngineFolding { p, s }).collect(),
        );
        let (a_bits, w_bits) = ([2usize, 4, 8][a_sel], [2usize, 4, 8][w_sel]);
        let precision = match precision_sel {
            0 => None,
            1 => Some(NetworkPrecision::uniform(n, a_bits, w_bits).unwrap()),
            2 => Some(NetworkPrecision::one_bit(n).unwrap()),
            _ => Some(NetworkPrecision::uniform(3, a_bits, w_bits).unwrap()),
        };
        let cand = Candidate { folding, precision };
        let fast = oracle.check(&cand);
        let report = verify(&oracle.target(&cand));
        prop_assert_eq!(
            fast.is_feasible(),
            !report.has_errors(),
            "oracle/verifier disagreement (strict={}) on {:?}:\n{}",
            strict,
            &cand,
            report.render_human()
        );
    }
}
